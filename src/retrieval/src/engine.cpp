#include "hpcgpt/retrieval/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/trace.hpp"

namespace hpcgpt::retrieval {

namespace {

[[noreturn]] void invalid(const std::string& what) {
  throw std::invalid_argument("RetrievalConfig: " + what);
}

}  // namespace

void RetrievalConfig::validate() const {
  if (hybrid_expand == 0) invalid("hybrid_expand must be >= 1");
  if (rrf_k == 0) invalid("rrf_k must be >= 1");
  if (bm25_k1 <= 0.0) invalid("bm25_k1 must be > 0");
  if (bm25_b < 0.0 || bm25_b > 1.0) invalid("bm25_b must be in [0, 1]");
  if (index.block_size == 0) invalid("index.block_size must be >= 1");
  if (index.seal_threshold == 0) invalid("index.seal_threshold must be >= 1");
  if (index.merge_fanin < 2) invalid("index.merge_fanin must be >= 2");
  if (ivf.dim == 0) invalid("ivf.dim must be >= 1");
}

std::string_view engine_name(RetrievalConfig::Engine engine) {
  switch (engine) {
    case RetrievalConfig::Engine::Scan: return "scan";
    case RetrievalConfig::Engine::Indexed: return "indexed";
    case RetrievalConfig::Engine::Hybrid: return "hybrid";
  }
  return "indexed";
}

RetrievalConfig::Engine engine_by_name(std::string_view name) {
  if (name == "scan") return RetrievalConfig::Engine::Scan;
  if (name == "indexed") return RetrievalConfig::Engine::Indexed;
  if (name == "hybrid") return RetrievalConfig::Engine::Hybrid;
  throw std::invalid_argument("unknown retrieval engine: " + std::string(name) +
                              " (expected scan|indexed|hybrid)");
}

std::string_view fusion_name(RetrievalConfig::Fusion fusion) {
  return fusion == RetrievalConfig::Fusion::Rerank ? "rerank" : "rrf";
}

RetrievalConfig::Fusion fusion_by_name(std::string_view name) {
  if (name == "rerank") return RetrievalConfig::Fusion::Rerank;
  if (name == "rrf") return RetrievalConfig::Fusion::Rrf;
  throw std::invalid_argument("unknown fusion mode: " + std::string(name) +
                              " (expected rerank|rrf)");
}

std::string_view weighting_name(RetrievalConfig::Weighting weighting) {
  return weighting == RetrievalConfig::Weighting::Tfidf ? "tfidf" : "bm25";
}

RetrievalConfig::Weighting weighting_by_name(std::string_view name) {
  if (name == "tfidf") return RetrievalConfig::Weighting::Tfidf;
  if (name == "bm25") return RetrievalConfig::Weighting::Bm25;
  throw std::invalid_argument("unknown weighting: " + std::string(name) +
                              " (expected tfidf|bm25)");
}

SearchEngine::SearchEngine(TfidfEmbedder embedder, RetrievalConfig config)
    : embedder_(std::move(embedder)),
      config_(config),
      index_(config.index),
      ivf_(config.ivf),
      terms_hll_(12),
      term_seen_(embedder_.vocabulary_size(), false) {
  config_.validate();
  if (config_.weighting == RetrievalConfig::Weighting::Bm25) {
    // BM25's per-term doc weight is bounded by k1 + 1; quantize against it.
    impact_scale_ = (config_.bm25_k1 + 1.0) / 255.0;
  }
}

SearchEngine::DocVec SearchEngine::doc_weights(const std::string& text) const {
  DocVec out;
  if (config_.weighting == RetrievalConfig::Weighting::Tfidf) {
    // L2-normalized TF-IDF weights are in [0, 1].
    for (const auto& [term, weight] : embedder_.embed(text)) {
      const double q = std::round(static_cast<double>(weight) / impact_scale_);
      const auto impact =
          static_cast<std::uint8_t>(std::clamp(q, 0.0, 255.0));
      if (impact > 0) out.emplace_back(term, impact);
    }
    return out;
  }
  const SparseVector counts = embedder_.term_counts(text);
  double dl = 0.0;
  for (const auto& [term, tf] : counts) dl += static_cast<double>(tf);
  const double avgdl = std::max(embedder_.average_doc_length(), 1e-9);
  const double k1 = config_.bm25_k1;
  const double b = config_.bm25_b;
  for (const auto& [term, tf_f] : counts) {
    const double tf = static_cast<double>(tf_f);
    const double w =
        tf * (k1 + 1.0) / (tf + k1 * (1.0 - b + b * dl / avgdl));
    const double q = std::round(w / impact_scale_);
    const auto impact = static_cast<std::uint8_t>(std::clamp(q, 0.0, 255.0));
    if (impact > 0) out.emplace_back(term, impact);
  }
  return out;
}

std::vector<std::pair<TermId, double>> SearchEngine::query_weights(
    const std::string& query) const {
  std::vector<std::pair<TermId, double>> out;
  if (config_.weighting == RetrievalConfig::Weighting::Tfidf) {
    for (const auto& [term, weight] : embedder_.embed(query)) {
      if (weight > 0.0f) out.emplace_back(term, static_cast<double>(weight));
    }
    return out;
  }
  const double n = static_cast<double>(embedder_.documents());
  for (const auto& [term, tf] : embedder_.term_counts(query)) {
    const double df = static_cast<double>(embedder_.doc_frequency(term));
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    const double weight = static_cast<double>(tf) * idf;
    if (weight > 0.0) out.emplace_back(term, weight);
  }
  return out;
}

void SearchEngine::add(std::string chunk) {
  const auto doc = static_cast<DocId>(texts_.size());
  DocVec weights = doc_weights(chunk);
  index_.add_document(doc, weights);
  ivf_.add(doc, project_dense(embedder_.embed(chunk), config_.ivf.dim,
                              config_.ivf.seed));
  if (term_seen_.size() < embedder_.vocabulary_size())
    term_seen_.resize(embedder_.vocabulary_size(), false);
  for (const auto& [term, impact] : weights) {
    terms_hll_.add(term);
    if (!term_seen_[term]) {
      term_seen_[term] = true;
      ++distinct_terms_;
    }
  }
  vectors_.push_back(std::move(weights));
  texts_.push_back(std::move(chunk));

  auto& registry = obs::MetricsRegistry::global();
  static obs::Gauge& docs_gauge = registry.gauge("retrieval.index.docs");
  static obs::Gauge& postings_gauge = registry.gauge("retrieval.index.postings");
  static obs::Gauge& segments_gauge = registry.gauge("retrieval.index.segments");
  static obs::Gauge& distinct_gauge =
      registry.gauge("retrieval.index.distinct_terms_estimate");
  const InvertedIndex::Stats s = index_.stats();
  docs_gauge.set(static_cast<std::int64_t>(s.docs));
  postings_gauge.set(static_cast<std::int64_t>(s.postings));
  segments_gauge.set(static_cast<std::int64_t>(s.sealed_segments));
  distinct_gauge.set(static_cast<std::int64_t>(terms_hll_.estimate()));
}

void SearchEngine::add_all(const std::vector<std::string>& chunks) {
  for (const std::string& c : chunks) add(c);
}

// Exact per-document score: merge-join of the quantized doc vector with
// the query, accumulated in ascending term-id order. WAND's evaluation
// uses the identical expression and order, so both paths produce bitwise
// equal doubles — the foundation of the ranking-equivalence guarantee.
double SearchEngine::doc_score(
    const DocVec& doc,
    const std::vector<std::pair<TermId, double>>& query) const {
  double score = 0.0;
  auto id = doc.begin();
  auto iq = query.begin();
  while (id != doc.end() && iq != query.end()) {
    if (id->first < iq->first) {
      ++id;
    } else if (iq->first < id->first) {
      ++iq;
    } else {
      score += iq->second * (static_cast<double>(id->second) * impact_scale_);
      ++id;
      ++iq;
    }
  }
  return score;
}

std::vector<Hit> SearchEngine::top_k(const std::string& query,
                                     std::size_t k) const {
  return top_k_with(query, k, config_.engine);
}

std::vector<Hit> SearchEngine::top_k_with(
    const std::string& query, std::size_t k,
    RetrievalConfig::Engine engine) const {
  HPCGPT_TRACE("retrieval.query");
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& queries = registry.counter("retrieval.query.count");
  static obs::Histogram& seconds = registry.histogram("retrieval.query.seconds");
  const auto start = std::chrono::steady_clock::now();
  queries.add();

  const std::vector<std::pair<TermId, double>> weights = query_weights(query);
  std::vector<Hit> hits;
  switch (engine) {
    case RetrievalConfig::Engine::Scan:
      hits = scan_top_k(weights, k);
      break;
    case RetrievalConfig::Engine::Indexed:
      hits = indexed_top_k(weights, k);
      break;
    case RetrievalConfig::Engine::Hybrid:
      hits = hybrid_top_k(weights, k, query);
      break;
  }

  seconds.observe(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count());
  return hits;
}

std::vector<Hit> SearchEngine::scan_top_k(
    const std::vector<std::pair<TermId, double>>& query, std::size_t k) const {
  std::vector<Hit> hits;
  hits.reserve(texts_.size());
  for (std::size_t i = 0; i < texts_.size(); ++i) {
    Hit h;
    h.index = i;
    h.score = doc_score(vectors_[i], query);
    hits.push_back(std::move(h));
  }
  const std::size_t keep = std::min(k, hits.size());
  std::partial_sort(hits.begin(),
                    hits.begin() + static_cast<std::ptrdiff_t>(keep),
                    hits.end(), [](const Hit& x, const Hit& y) {
                      return x.score > y.score ||
                             (x.score == y.score && x.index < y.index);
                    });
  hits.resize(keep);
  for (Hit& h : hits) h.text = texts_[h.index];
  return hits;
}

std::vector<Hit> SearchEngine::finalize(std::vector<ScoredDoc> scored,
                                        std::size_t k) const {
  std::vector<Hit> hits;
  hits.reserve(std::min(k, scored.size()));
  for (const ScoredDoc& s : scored) {
    if (hits.size() >= k) break;
    Hit h;
    h.index = s.doc;
    h.score = s.score;
    h.text = texts_[s.doc];
    hits.push_back(std::move(h));
  }
  return hits;
}

void SearchEngine::fill_unmatched(std::vector<Hit>& hits,
                                  std::size_t k) const {
  if (hits.size() >= k) return;
  std::vector<std::size_t> taken;
  taken.reserve(hits.size());
  for (const Hit& h : hits) taken.push_back(h.index);
  std::sort(taken.begin(), taken.end());
  for (std::size_t i = 0; i < texts_.size() && hits.size() < k; ++i) {
    if (std::binary_search(taken.begin(), taken.end(), i)) continue;
    Hit h;
    h.index = i;
    h.score = 0.0;
    h.text = texts_[i];
    hits.push_back(std::move(h));
  }
}

std::vector<Hit> SearchEngine::indexed_top_k(
    const std::vector<std::pair<TermId, double>>& query, std::size_t k) const {
  WandStats wstats;
  std::vector<ScoredDoc> scored =
      wand_top_k(index_, query, impact_scale_, k, &wstats);
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& docs_scored =
      registry.counter("retrieval.query.docs_scored");
  static obs::Counter& blocks_skipped =
      registry.counter("retrieval.query.blocks_skipped");
  static obs::Counter& postings_decoded =
      registry.counter("retrieval.query.postings_decoded");
  docs_scored.add(wstats.docs_scored);
  blocks_skipped.add(wstats.blocks_skipped);
  postings_decoded.add(wstats.postings_decoded);

  std::vector<Hit> hits = finalize(std::move(scored), k);
  fill_unmatched(hits, k);
  return hits;
}

std::vector<Hit> SearchEngine::hybrid_top_k(
    const std::vector<std::pair<TermId, double>>& query, std::size_t k,
    const std::string& raw_query) const {
  const std::size_t expand = k * config_.hybrid_expand;
  std::vector<ScoredDoc> lexical =
      wand_top_k(index_, query, impact_scale_, expand, nullptr);
  std::vector<IvfFlatIndex::Result> dense;
  if (ivf_.size() > 0) {
    dense = ivf_.top_k(
        project_dense(embedder_.embed(raw_query), config_.ivf.dim,
                      config_.ivf.seed),
        expand, config_.ivf.probes);
  }

  if (config_.fusion == RetrievalConfig::Fusion::Rerank) {
    // Union the candidate ids, then re-score exactly against the stored
    // sparse vectors. The WAND list alone already contains the true top-k
    // (expand >= 1), so the reranked order provably equals the scan's.
    std::vector<DocId> candidates;
    candidates.reserve(lexical.size() + dense.size());
    for (const ScoredDoc& s : lexical) candidates.push_back(s.doc);
    for (const IvfFlatIndex::Result& r : dense) candidates.push_back(r.doc);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    std::vector<ScoredDoc> rescored;
    rescored.reserve(candidates.size());
    for (const DocId doc : candidates) {
      const double score = doc_score(vectors_[doc], query);
      // Zero-score (vector-only) candidates are dropped: the scan ranks
      // unmatched docs purely by index order, which fill_unmatched
      // reproduces.
      if (score > 0.0) rescored.push_back(ScoredDoc{score, doc});
    }
    std::sort(rescored.begin(), rescored.end(),
              [](const ScoredDoc& a, const ScoredDoc& b) {
                return a.score > b.score ||
                       (a.score == b.score && a.doc < b.doc);
              });
    std::vector<Hit> hits = finalize(std::move(rescored), k);
    fill_unmatched(hits, k);
    return hits;
  }

  // Reciprocal-rank fusion: score = sum over lists of 1 / (rrf_k + rank).
  std::vector<std::pair<DocId, double>> fused;
  const auto accumulate = [&](DocId doc, std::size_t rank) {
    const double contribution =
        1.0 / (static_cast<double>(config_.rrf_k) + static_cast<double>(rank) +
               1.0);
    for (auto& [d, s] : fused) {
      if (d == doc) {
        s += contribution;
        return;
      }
    }
    fused.emplace_back(doc, contribution);
  };
  for (std::size_t r = 0; r < lexical.size(); ++r)
    accumulate(lexical[r].doc, r);
  for (std::size_t r = 0; r < dense.size(); ++r) accumulate(dense[r].doc, r);
  std::sort(fused.begin(), fused.end(),
            [](const auto& a, const auto& b) {
              return a.second > b.second ||
                     (a.second == b.second && a.first < b.first);
            });
  std::vector<ScoredDoc> scored;
  scored.reserve(fused.size());
  for (const auto& [doc, score] : fused) scored.push_back(ScoredDoc{score, doc});
  std::vector<Hit> hits = finalize(std::move(scored), k);
  fill_unmatched(hits, k);
  return hits;
}

IndexStats SearchEngine::stats() const {
  const InvertedIndex::Stats s = index_.stats();
  IndexStats out;
  out.documents = s.docs;
  out.postings = s.postings;
  out.sealed_segments = s.sealed_segments;
  out.tail_documents = s.tail_docs;
  out.compressed_bytes = s.compressed_bytes;
  out.distinct_terms = distinct_terms_;
  out.distinct_terms_estimate = terms_hll_.estimate();
  return out;
}

}  // namespace hpcgpt::retrieval
