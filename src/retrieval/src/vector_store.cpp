#include "hpcgpt/retrieval/vector_store.hpp"

#include <algorithm>
#include <cmath>

#include "hpcgpt/support/strings.hpp"

namespace hpcgpt::retrieval {

void TfidfEmbedder::fit(const std::vector<std::string>& corpus) {
  vocab_.clear();
  doc_freq_.clear();
  documents_ = corpus.size();
  std::size_t total_words = 0;
  for (const std::string& doc : corpus) {
    std::vector<std::string> words = strings::normalized_words(doc);
    total_words += words.size();
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    for (const std::string& w : words) {
      const auto [it, inserted] =
          vocab_.try_emplace(w, static_cast<TermId>(vocab_.size()));
      if (inserted) doc_freq_.push_back(0);
      ++doc_freq_[it->second];
    }
  }
  avg_doc_len_ = documents_ > 0
                     ? static_cast<double>(total_words) /
                           static_cast<double>(documents_)
                     : 0.0;
  idf_.resize(doc_freq_.size());
  for (std::size_t i = 0; i < doc_freq_.size(); ++i) {
    idf_[i] = std::log((1.0 + static_cast<double>(documents_)) /
                       (1.0 + static_cast<double>(doc_freq_[i]))) +
              1.0;
  }
}

SparseVector TfidfEmbedder::term_counts(const std::string& text) const {
  std::vector<TermId> ids;
  for (const std::string& w : strings::normalized_words(text)) {
    const auto it = vocab_.find(w);
    if (it != vocab_.end()) ids.push_back(it->second);
  }
  std::sort(ids.begin(), ids.end());
  SparseVector counts;
  for (std::size_t i = 0; i < ids.size();) {
    std::size_t j = i;
    while (j < ids.size() && ids[j] == ids[i]) ++j;
    counts.emplace_back(ids[i], static_cast<float>(j - i));
    i = j;
  }
  return counts;
}

SparseVector TfidfEmbedder::embed(const std::string& text) const {
  SparseVector v = term_counts(text);
  for (auto& [term, weight] : v) {
    weight = static_cast<float>(static_cast<double>(weight) * idf_[term]);
  }
  // Normalize against the norm of the float-rounded weights (not the
  // pre-rounding doubles) and divide in double: the only precision the
  // unit norm loses is the final per-component float rounding.
  double norm_sq = 0.0;
  for (const auto& [term, weight] : v) {
    norm_sq += static_cast<double>(weight) * static_cast<double>(weight);
  }
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& [term, weight] : v) {
      weight = static_cast<float>(static_cast<double>(weight) * inv);
    }
  }
  return v;
}

double cosine(const SparseVector& a, const SparseVector& b) {
  double dot = 0.0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      dot += static_cast<double>(ia->second) * static_cast<double>(ib->second);
      ++ia;
      ++ib;
    }
  }
  return dot;
}

void VectorStore::add(std::string chunk) {
  vectors_.push_back(embedder_.embed(chunk));
  chunks_.push_back(std::move(chunk));
}

void VectorStore::add_all(const std::vector<std::string>& chunks) {
  for (const std::string& c : chunks) add(c);
}

std::vector<Hit> VectorStore::top_k(const std::string& query,
                                    std::size_t k) const {
  const SparseVector q = embedder_.embed(query);
  std::vector<Hit> hits;
  hits.reserve(chunks_.size());
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    Hit h;
    h.index = i;
    h.score = cosine(q, vectors_[i]);
    hits.push_back(std::move(h));
  }
  std::partial_sort(hits.begin(),
                    hits.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(k, hits.size())),
                    hits.end(), [](const Hit& x, const Hit& y) {
                      return x.score > y.score ||
                             (x.score == y.score && x.index < y.index);
                    });
  hits.resize(std::min(k, hits.size()));
  for (Hit& h : hits) h.text = chunks_[h.index];
  return hits;
}

}  // namespace hpcgpt::retrieval
