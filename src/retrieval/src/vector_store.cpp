#include "hpcgpt/retrieval/vector_store.hpp"

#include <algorithm>
#include <cmath>

#include "hpcgpt/support/strings.hpp"

namespace hpcgpt::retrieval {

void TfidfEmbedder::fit(const std::vector<std::string>& corpus) {
  vocab_.clear();
  documents_ = corpus.size();
  std::vector<std::size_t> doc_freq;
  for (const std::string& doc : corpus) {
    std::vector<std::string> words = strings::normalized_words(doc);
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    for (const std::string& w : words) {
      const auto [it, inserted] = vocab_.try_emplace(w, vocab_.size());
      if (inserted) doc_freq.push_back(0);
      ++doc_freq[it->second];
    }
  }
  idf_.resize(doc_freq.size());
  for (std::size_t i = 0; i < doc_freq.size(); ++i) {
    idf_[i] = std::log((1.0 + static_cast<double>(documents_)) /
                       (1.0 + static_cast<double>(doc_freq[i]))) +
              1.0;
  }
}

std::map<std::size_t, double> TfidfEmbedder::embed(
    const std::string& text) const {
  std::map<std::size_t, double> counts;
  for (const std::string& w : strings::normalized_words(text)) {
    const auto it = vocab_.find(w);
    if (it != vocab_.end()) counts[it->second] += 1.0;
  }
  double norm_sq = 0.0;
  for (auto& [term, weight] : counts) {
    weight *= idf_[term];
    norm_sq += weight * weight;
  }
  if (norm_sq > 0.0) {
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (auto& [term, weight] : counts) weight *= inv;
  }
  return counts;
}

double cosine(const std::map<std::size_t, double>& a,
              const std::map<std::size_t, double>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [term, weight] : small) {
    const auto it = large.find(term);
    if (it != large.end()) dot += weight * it->second;
  }
  return dot;
}

void VectorStore::add(std::string chunk) {
  vectors_.push_back(embedder_.embed(chunk));
  chunks_.push_back(std::move(chunk));
}

void VectorStore::add_all(const std::vector<std::string>& chunks) {
  for (const std::string& c : chunks) add(c);
}

std::vector<Hit> VectorStore::top_k(const std::string& query,
                                    std::size_t k) const {
  const auto q = embedder_.embed(query);
  std::vector<Hit> hits;
  hits.reserve(chunks_.size());
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    Hit h;
    h.index = i;
    h.score = cosine(q, vectors_[i]);
    hits.push_back(std::move(h));
  }
  std::partial_sort(hits.begin(),
                    hits.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(k, hits.size())),
                    hits.end(), [](const Hit& x, const Hit& y) {
                      return x.score > y.score ||
                             (x.score == y.score && x.index < y.index);
                    });
  hits.resize(std::min(k, hits.size()));
  for (Hit& h : hits) h.text = chunks_[h.index];
  return hits;
}

}  // namespace hpcgpt::retrieval
