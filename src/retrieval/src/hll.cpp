#include "hpcgpt/retrieval/hll.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace hpcgpt::retrieval {

namespace {

// splitmix64 finalizer: integer term ids are nearly sequential, so they
// need a full-avalanche mix before bucketing.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double alpha(std::size_t m) {
  switch (m) {
    case 16: return 0.673;
    case 32: return 0.697;
    case 64: return 0.709;
    default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(unsigned precision) : precision_(precision) {
  if (precision_ < 4 || precision_ > 16)
    throw std::invalid_argument("HyperLogLog precision must be in [4, 16]");
  registers_.assign(std::size_t{1} << precision_, 0);
}

void HyperLogLog::add(std::uint64_t value) { add_hash(mix(value)); }

void HyperLogLog::add_hash(std::uint64_t hash) {
  const std::size_t bucket = hash >> (64 - precision_);
  const std::uint64_t rest = hash << precision_;
  // Rank = leading-zero count of the remaining bits + 1 (capped so the
  // all-zero suffix still yields a valid rank).
  const std::uint8_t rank = static_cast<std::uint8_t>(
      rest == 0 ? 65 - precision_ : std::countl_zero(rest) + 1);
  registers_[bucket] = std::max(registers_[bucket], rank);
}

double HyperLogLog::estimate() const {
  const std::size_t m = registers_.size();
  double inv_sum = 0.0;
  std::size_t zeros = 0;
  for (const std::uint8_t r : registers_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double raw = alpha(m) * static_cast<double>(m) *
                     static_cast<double>(m) / inv_sum;
  // Small-range (linear counting) correction.
  if (raw <= 2.5 * static_cast<double>(m) && zeros > 0) {
    return static_cast<double>(m) *
           std::log(static_cast<double>(m) / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (other.precision_ != precision_)
    throw std::invalid_argument("HyperLogLog precision mismatch in merge");
  for (std::size_t i = 0; i < registers_.size(); ++i)
    registers_[i] = std::max(registers_[i], other.registers_[i]);
}

void HyperLogLog::reset() {
  std::fill(registers_.begin(), registers_.end(), std::uint8_t{0});
}

}  // namespace hpcgpt::retrieval
