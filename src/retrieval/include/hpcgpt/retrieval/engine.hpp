#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hpcgpt/retrieval/hll.hpp"
#include "hpcgpt/retrieval/index.hpp"
#include "hpcgpt/retrieval/ivf.hpp"
#include "hpcgpt/retrieval/vector_store.hpp"

namespace hpcgpt::retrieval {

/// Every retrieval knob in one validated bag (mirrors serve::ServeConfig;
/// the CLI flags map 1:1 onto these fields).
struct RetrievalConfig {
  /// Which query path top_k() takes.
  ///  - Scan: brute-force over every stored document (the paper-scale
  ///    baseline; exact).
  ///  - Indexed: WAND top-k over the compressed inverted index — returns
  ///    the *same ranking* as Scan while touching a fraction of the index.
  ///  - Hybrid: lexical + vector ANN candidate generation, fused.
  enum class Engine { Scan, Indexed, Hybrid };
  /// Document-side impact weighting stored in the index.
  enum class Weighting { Tfidf, Bm25 };
  /// Hybrid candidate fusion.
  ///  - Rerank: union of WAND and IVF candidates, exactly re-scored
  ///    against the stored sparse vectors (ranking provably equals Scan).
  ///  - Rrf: reciprocal-rank fusion of the two candidate lists (ranking
  ///    intentionally blends lexical and vector orders; not scan-equal).
  enum class Fusion { Rerank, Rrf };

  Engine engine = Engine::Indexed;
  Weighting weighting = Weighting::Tfidf;
  Fusion fusion = Fusion::Rerank;
  std::size_t hybrid_expand = 4;  ///< candidate multiplier per source
  std::size_t rrf_k = 60;         ///< RRF rank-offset constant
  double bm25_k1 = 1.2;
  double bm25_b = 0.75;
  IndexOptions index;
  IvfOptions ivf;

  /// Throws InvalidArgument (std::invalid_argument) on nonsense.
  void validate() const;
};

std::string_view engine_name(RetrievalConfig::Engine engine);
RetrievalConfig::Engine engine_by_name(std::string_view name);
std::string_view fusion_name(RetrievalConfig::Fusion fusion);
RetrievalConfig::Fusion fusion_by_name(std::string_view name);
std::string_view weighting_name(RetrievalConfig::Weighting weighting);
RetrievalConfig::Weighting weighting_by_name(std::string_view name);

struct IndexStats {
  std::size_t documents = 0;
  std::size_t postings = 0;
  std::size_t sealed_segments = 0;
  std::size_t tail_documents = 0;
  std::size_t compressed_bytes = 0;
  std::size_t distinct_terms = 0;        ///< exact
  double distinct_terms_estimate = 0.0;  ///< HyperLogLog sketch
};

/// The indexed hybrid retrieval engine: a compressed inverted index with
/// WAND top-k, an IVF-flat vector index over dense projections, and the
/// brute-force scan kept as the reference path. add() keeps documents
/// immediately searchable (in-memory tail segment). top_k() is const and
/// safe to call concurrently; add() needs external serialization against
/// queries.
class SearchEngine {
 public:
  explicit SearchEngine(TfidfEmbedder embedder, RetrievalConfig config = {});

  void add(std::string chunk);
  void add_all(const std::vector<std::string>& chunks);
  std::size_t size() const { return texts_.size(); }

  /// The k best chunks for `query`, best first (score desc, index asc),
  /// routed through config().engine.
  std::vector<Hit> top_k(const std::string& query, std::size_t k) const;
  /// Same, forcing a specific engine — the equivalence property tests and
  /// the scan-vs-indexed bench compare paths over one shared index.
  std::vector<Hit> top_k_with(const std::string& query, std::size_t k,
                              RetrievalConfig::Engine engine) const;

  const RetrievalConfig& config() const { return config_; }
  const TfidfEmbedder& embedder() const { return embedder_; }
  IndexStats stats() const;

 private:
  /// Quantized document-side term weights (sorted by term id, zero
  /// impacts dropped) — the single source both scan and WAND score from.
  using DocVec = std::vector<std::pair<TermId, std::uint8_t>>;

  DocVec doc_weights(const std::string& text) const;
  std::vector<std::pair<TermId, double>> query_weights(
      const std::string& query) const;
  double doc_score(const DocVec& doc,
                   const std::vector<std::pair<TermId, double>>& query) const;
  std::vector<Hit> scan_top_k(
      const std::vector<std::pair<TermId, double>>& query,
      std::size_t k) const;
  std::vector<Hit> indexed_top_k(
      const std::vector<std::pair<TermId, double>>& query,
      std::size_t k) const;
  std::vector<Hit> hybrid_top_k(
      const std::vector<std::pair<TermId, double>>& query, std::size_t k,
      const std::string& raw_query) const;
  /// Pads `hits` to k with never-matched docs in index order at score 0
  /// (exactly what the scan's ranking does below the matched docs).
  void fill_unmatched(std::vector<Hit>& hits, std::size_t k) const;
  std::vector<Hit> finalize(std::vector<ScoredDoc> scored, std::size_t k) const;

  TfidfEmbedder embedder_;
  RetrievalConfig config_;
  double impact_scale_ = 1.0 / 255.0;
  InvertedIndex index_;
  IvfFlatIndex ivf_;
  HyperLogLog terms_hll_;
  std::vector<bool> term_seen_;
  std::size_t distinct_terms_ = 0;
  std::vector<std::string> texts_;
  std::vector<DocVec> vectors_;
};

}  // namespace hpcgpt::retrieval
