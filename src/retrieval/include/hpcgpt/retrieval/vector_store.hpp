#pragma once

#include <map>
#include <string>
#include <vector>

namespace hpcgpt::retrieval {

/// TF-IDF document embedder over normalized words.
///
/// This is the embedding component of the LangChain-style vector store the
/// paper proposes (§5) for updating HPC-GPT with new data without
/// retraining: text is chunked, embedded and matched against prompts by
/// cosine similarity.
class TfidfEmbedder {
 public:
  /// Learns the vocabulary and document frequencies from `corpus`.
  void fit(const std::vector<std::string>& corpus);

  /// Sparse TF-IDF vector (term id → weight), L2-normalized.
  std::map<std::size_t, double> embed(const std::string& text) const;

  std::size_t vocabulary_size() const { return vocab_.size(); }
  bool fitted() const { return documents_ > 0; }

 private:
  std::map<std::string, std::size_t> vocab_;
  std::vector<double> idf_;
  std::size_t documents_ = 0;
};

/// Cosine similarity of two sparse vectors (both assumed L2-normalized,
/// so this is just the dot product).
double cosine(const std::map<std::size_t, double>& a,
              const std::map<std::size_t, double>& b);

/// A scored retrieval hit.
struct Hit {
  std::size_t index = 0;  ///< position in the store
  double score = 0.0;
  std::string text;
};

/// In-memory vector store with top-k cosine retrieval.
class VectorStore {
 public:
  explicit VectorStore(TfidfEmbedder embedder) : embedder_(std::move(embedder)) {}

  /// Adds one chunk. Chunks added after construction are immediately
  /// searchable — the "integrate new data without retraining" property.
  void add(std::string chunk);
  void add_all(const std::vector<std::string>& chunks);

  std::size_t size() const { return chunks_.size(); }

  /// The `k` most similar chunks to `query`, best first.
  std::vector<Hit> top_k(const std::string& query, std::size_t k) const;

 private:
  TfidfEmbedder embedder_;
  std::vector<std::string> chunks_;
  std::vector<std::map<std::size_t, double>> vectors_;
};

}  // namespace hpcgpt::retrieval
