#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace hpcgpt::retrieval {

/// Term identifier in a fitted TfidfEmbedder vocabulary.
using TermId = std::uint32_t;

/// Document identifier: position in a store/engine's document list. Docs
/// are appended with strictly increasing ids, which keeps every postings
/// list naturally sorted and lets sealed index segments cover disjoint
/// id ranges.
using DocId = std::uint32_t;

/// Sparse embedding: (term id, weight) pairs sorted by ascending term id.
/// Flat and contiguous — one allocation per vector instead of the old
/// `std::map`'s node per term, which dominated the query hot path.
using SparseVector = std::vector<std::pair<TermId, float>>;

/// TF-IDF document embedder over normalized words.
///
/// This is the embedding component of the LangChain-style vector store the
/// paper proposes (§5) for updating HPC-GPT with new data without
/// retraining: text is chunked, embedded and matched against prompts by
/// cosine similarity.
class TfidfEmbedder {
 public:
  /// Learns the vocabulary and document frequencies from `corpus`.
  void fit(const std::vector<std::string>& corpus);

  /// Sparse TF-IDF vector, L2-normalized, sorted by term id.
  SparseVector embed(const std::string& text) const;

  /// Raw term-frequency counts (no idf, no normalization), sorted by term
  /// id — the BM25 weighting input.
  SparseVector term_counts(const std::string& text) const;

  std::size_t vocabulary_size() const { return vocab_.size(); }
  bool fitted() const { return documents_ > 0; }
  std::size_t documents() const { return documents_; }
  /// Number of fitted documents containing `term`.
  std::size_t doc_frequency(TermId term) const { return doc_freq_[term]; }
  double idf(TermId term) const { return idf_[term]; }
  /// Mean fitted document length in normalized words (BM25's avgdl),
  /// frozen at fit() time so incremental adds don't reweight old docs.
  double average_doc_length() const { return avg_doc_len_; }

 private:
  std::map<std::string, TermId> vocab_;
  std::vector<double> idf_;
  std::vector<std::uint32_t> doc_freq_;
  std::size_t documents_ = 0;
  double avg_doc_len_ = 0.0;
};

/// Cosine similarity of two sparse vectors (both assumed L2-normalized,
/// so this is just the dot product over the sorted-merge intersection).
double cosine(const SparseVector& a, const SparseVector& b);

/// A scored retrieval hit.
struct Hit {
  std::size_t index = 0;  ///< position in the store
  double score = 0.0;
  std::string text;
};

/// In-memory vector store with brute-force top-k cosine retrieval. Kept as
/// the demo-scale baseline (and for grounding in the analysis service);
/// `SearchEngine` in engine.hpp is the indexed production path.
class VectorStore {
 public:
  explicit VectorStore(TfidfEmbedder embedder) : embedder_(std::move(embedder)) {}

  /// Adds one chunk. Chunks added after construction are immediately
  /// searchable — the "integrate new data without retraining" property.
  void add(std::string chunk);
  void add_all(const std::vector<std::string>& chunks);

  std::size_t size() const { return chunks_.size(); }

  /// The `k` most similar chunks to `query`, best first.
  std::vector<Hit> top_k(const std::string& query, std::size_t k) const;

 private:
  TfidfEmbedder embedder_;
  std::vector<std::string> chunks_;
  std::vector<SparseVector> vectors_;
};

}  // namespace hpcgpt::retrieval
