#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpcgpt::retrieval {

/// HyperLogLog distinct-count sketch (the RediSearch-style cardinality
/// reducer from SNIPPETS.md): 2^precision single-byte registers holding the
/// max leading-zero rank seen per bucket, with linear-counting correction
/// in the small-cardinality regime. Standard error ~= 1.04 / sqrt(2^p).
class HyperLogLog {
 public:
  explicit HyperLogLog(unsigned precision = 12);

  /// Folds a raw value in via an avalanche mix, then updates its bucket.
  void add(std::uint64_t value);
  /// Updates from a pre-mixed 64-bit hash (bypasses the avalanche step).
  void add_hash(std::uint64_t hash);

  double estimate() const;

  /// Union: register-wise max. Both sketches must share a precision.
  void merge(const HyperLogLog& other);
  void reset();

  unsigned precision() const { return precision_; }
  std::size_t register_count() const { return registers_.size(); }

 private:
  unsigned precision_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace hpcgpt::retrieval
