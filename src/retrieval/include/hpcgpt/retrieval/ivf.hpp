#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hpcgpt/retrieval/vector_store.hpp"

namespace hpcgpt::retrieval {

struct IvfOptions {
  std::size_t dim = 64;       ///< dense embedding dimensionality
  std::size_t clusters = 0;   ///< 0 = auto (~sqrt(n), clamped to [4, 256])
  std::size_t probes = 0;     ///< lists probed per query; 0 = auto (~1/4)
  std::size_t train_threshold = 256;  ///< docs buffered before k-means
  std::size_t kmeans_iters = 8;
  std::uint64_t seed = 0x48504347ull;  // "HPCG"
};

/// Signed-random-projection of an L2-normalized sparse vector into a dense
/// `dim`-float embedding (deterministic in `seed`), L2-renormalized.
/// Johnson–Lindenstrauss: cosine in the dense space approximates sparse
/// cosine, which is all the ANN candidate generator needs.
std::vector<float> project_dense(const SparseVector& sparse, std::size_t dim,
                                 std::uint64_t seed);

/// IVF-flat approximate nearest-neighbor index over dense embeddings.
/// Brute-force until `train_threshold` vectors arrive, then k-means
/// centroids partition the space and queries probe only the closest
/// `probes` lists. Scores are inner products (vectors are normalized, so
/// this is cosine); ties break toward the lower doc id.
class IvfFlatIndex {
 public:
  explicit IvfFlatIndex(IvfOptions opts = {});

  /// Adds a vector (copied). `vec.size()` must equal opts.dim.
  void add(DocId doc, std::span<const float> vec);

  std::size_t size() const { return docs_.size(); }
  bool trained() const { return !centroids_.empty(); }
  std::size_t cluster_count() const {
    return trained() ? centroids_.size() / opts_.dim : 1;
  }

  struct Result {
    float score = 0.0f;
    DocId doc = 0;
  };
  /// Top-k by inner product over the probed lists (all vectors when
  /// untrained). `probes` == 0 uses the configured/auto default.
  std::vector<Result> top_k(std::span<const float> query, std::size_t k,
                            std::size_t probes = 0) const;

 private:
  void train();
  std::size_t nearest_centroid(const float* vec) const;

  IvfOptions opts_;
  std::vector<float> centroids_;  // cluster_count x dim
  std::vector<std::vector<std::uint32_t>> lists_;  // per-centroid slots
  std::vector<float> vectors_;    // n x dim, in insertion order
  std::vector<DocId> docs_;       // parallel doc ids
};

}  // namespace hpcgpt::retrieval
