#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "hpcgpt/retrieval/vector_store.hpp"

namespace hpcgpt::retrieval {

/// One postings entry: a document and its 8-bit quantized impact score.
/// The impact is the document-side term weight (TF-IDF or BM25) scaled to
/// [0, 255]; both the scan and the WAND paths score from the *same*
/// quantized value, which is what makes their rankings bitwise equal.
struct Posting {
  DocId doc = 0;
  std::uint8_t impact = 0;
};

struct IndexOptions {
  std::size_t block_size = 64;        ///< postings per compressed block
  std::size_t seal_threshold = 4096;  ///< tail docs before sealing a segment
  std::size_t merge_fanin = 8;        ///< sealed segments before a full merge
};

/// Immutable delta-compressed postings list for one term of one sealed
/// segment. Layout: fixed-size blocks of (varint doc-id gap, impact byte)
/// pairs; each block has a skip entry carrying its last doc id, byte
/// offset, posting count and block-max impact, so a top-k iterator can
/// jump whole blocks without decoding them and WAND can bound the best
/// score any block could contribute.
class CompressedPostings {
 public:
  struct Skip {
    DocId last_doc = 0;        ///< last doc id in the block
    std::uint32_t offset = 0;  ///< byte offset of the block in `bytes_`
    std::uint16_t count = 0;   ///< postings in the block
    std::uint8_t max_impact = 0;
  };

  /// Encodes `postings` (sorted by doc id) into blocks of `block_size`.
  static CompressedPostings encode(std::span<const Posting> postings,
                                   std::size_t block_size);

  /// Decodes block `block` into `out` (capacity >= skips()[block].count).
  /// Returns the number of postings written.
  std::size_t decode_block(std::size_t block, Posting* out) const;

  const std::vector<Skip>& skips() const { return skips_; }
  std::uint32_t count() const { return count_; }
  std::uint8_t max_impact() const { return max_impact_; }
  std::size_t byte_size() const {
    return bytes_.size() + skips_.size() * sizeof(Skip);
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::vector<Skip> skips_;
  std::uint32_t count_ = 0;
  std::uint8_t max_impact_ = 0;
};

/// A sealed, immutable index segment: sorted term dictionary with one
/// compressed postings list per term, covering a contiguous doc-id range.
class Segment {
 public:
  static Segment build(
      const std::vector<std::pair<TermId, std::vector<Posting>>>& terms,
      std::uint32_t docs, std::size_t block_size);

  const CompressedPostings* find(TermId term) const;
  const std::vector<TermId>& terms() const { return terms_; }
  const std::vector<CompressedPostings>& lists() const { return lists_; }
  std::uint32_t doc_count() const { return docs_; }
  std::size_t byte_size() const;

 private:
  std::vector<TermId> terms_;  // sorted, parallel to lists_
  std::vector<CompressedPostings> lists_;
  std::uint32_t docs_ = 0;
};

/// Document-ordered cursor over one term's postings across every sealed
/// segment plus the in-memory tail, with skip-entry block jumps.
class PostingIterator {
 public:
  static constexpr DocId kEndDoc = 0xffffffffu;

  PostingIterator() = default;
  PostingIterator(std::vector<const CompressedPostings*> sealed,
                  std::span<const Posting> tail, std::size_t block_size);

  bool at_end() const { return current_.doc == kEndDoc; }
  DocId doc() const { return current_.doc; }
  std::uint8_t impact() const { return current_.impact; }

  /// Max impact across the whole list (WAND's per-term upper bound).
  std::uint8_t max_impact() const { return max_impact_; }
  /// Max impact of the current block (tail: whole-tail max) — the
  /// block-max refinement bound.
  std::uint8_t block_max_impact() const { return block_max_; }
  /// Last doc id the current block's bound covers (tail: the last tail
  /// doc) — the horizon block-max WAND may skip to when the bound loses.
  DocId block_last_doc() const;

  void next();
  /// Positions the cursor at the first posting with doc >= target,
  /// skipping whole blocks via the skip entries.
  void advance(DocId target);

  /// Blocks jumped over without decoding (across next/advance calls).
  std::uint64_t blocks_skipped() const { return blocks_skipped_; }
  /// Postings materialized from compressed blocks or the tail.
  std::uint64_t postings_decoded() const { return postings_decoded_; }

 private:
  void load_block(std::size_t block);
  void advance_source();

  std::vector<const CompressedPostings*> sealed_;
  std::span<const Posting> tail_;
  std::size_t source_ = 0;  // index into sealed_, == sealed_.size() => tail
  std::size_t block_ = 0;
  std::vector<Posting> buf_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
  std::size_t tail_pos_ = 0;
  Posting current_{kEndDoc, 0};
  std::uint8_t max_impact_ = 0;
  std::uint8_t block_max_ = 0;
  std::uint8_t tail_max_ = 0;
  std::uint64_t blocks_skipped_ = 0;
  std::uint64_t postings_decoded_ = 0;
};

/// OR-combinator: emits the union of its children's doc ids in order.
class UnionIterator {
 public:
  explicit UnionIterator(std::vector<PostingIterator> children);
  bool at_end() const;
  DocId doc() const { return doc_; }
  /// Sum of impacts of the children positioned at doc().
  std::uint32_t impact_sum() const;
  void next();

 private:
  void refresh();
  std::vector<PostingIterator> children_;
  DocId doc_ = PostingIterator::kEndDoc;
};

/// AND-combinator: emits only doc ids present in every child, using
/// advance() leapfrogging.
class IntersectionIterator {
 public:
  explicit IntersectionIterator(std::vector<PostingIterator> children);
  bool at_end() const;
  DocId doc() const { return doc_; }
  void next();

 private:
  void align(DocId target);
  std::vector<PostingIterator> children_;
  DocId doc_ = PostingIterator::kEndDoc;
};

/// Incremental inverted index: an in-memory tail segment absorbs add()s
/// (immediately searchable), seals into a compressed segment every
/// `seal_threshold` docs, and sealed segments are merged once
/// `merge_fanin` of them accumulate.
class InvertedIndex {
 public:
  explicit InvertedIndex(IndexOptions opts = {});

  /// Appends one document. `terms` must be sorted by term id with impacts
  /// > 0, and `doc` must be strictly greater than any previous id.
  void add_document(DocId doc,
                    std::span<const std::pair<TermId, std::uint8_t>> terms);

  /// Cursor over `term`'s postings (empty iterator for unseen terms).
  PostingIterator iterator(TermId term) const;

  /// Seals the tail into a compressed segment now (automatic at
  /// seal_threshold; public so tests can force segment boundaries).
  void seal_tail();

  std::uint32_t doc_count() const { return docs_; }

  struct Stats {
    std::size_t docs = 0;
    std::size_t postings = 0;
    std::size_t sealed_segments = 0;
    std::size_t tail_docs = 0;
    std::size_t compressed_bytes = 0;
    std::uint64_t seals = 0;
    std::uint64_t merges = 0;
  };
  Stats stats() const;

 private:
  void maybe_merge();

  struct TailList {
    std::vector<Posting> postings;
    std::uint8_t max_impact = 0;
  };

  IndexOptions opts_;
  std::vector<Segment> sealed_;
  std::unordered_map<TermId, TailList> tail_;
  std::uint32_t docs_ = 0;
  std::uint32_t tail_docs_ = 0;
  std::size_t postings_ = 0;
  std::uint64_t seals_ = 0;
  std::uint64_t merges_ = 0;
};

/// A (score, doc) result; ties broken by ascending doc id.
struct ScoredDoc {
  double score = 0.0;
  DocId doc = 0;
};

struct WandStats {
  std::uint64_t docs_scored = 0;
  std::uint64_t blocks_skipped = 0;
  std::uint64_t postings_decoded = 0;
  /// Pivot candidates dismissed wholesale by the block-max bound (each
  /// dismissal jumps the pivot run past a block boundary).
  std::uint64_t block_skips = 0;
};

/// WAND top-k over BM25/TF-IDF-weighted query terms. `query` must be
/// sorted by ascending term id with weights > 0; `impact_scale` dequantizes
/// stored 8-bit impacts (score contribution = weight * impact *
/// impact_scale, accumulated in ascending term-id order — the exact
/// arithmetic the brute-force scan uses, so rankings match bitwise).
/// Returns at most k matched docs, best first (score desc, doc id asc);
/// docs matching no query term are not returned.
std::vector<ScoredDoc> wand_top_k(
    const InvertedIndex& index,
    std::span<const std::pair<TermId, double>> query, double impact_scale,
    std::size_t k, WandStats* stats = nullptr);

}  // namespace hpcgpt::retrieval
