#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hpcgpt {

/// Incremental FNV-1a 64-bit hasher.
///
/// This is the content-hashing primitive behind the analysis service's
/// incremental cache (minilang AST fingerprints, diagnostic identities):
/// cheap, dependency-free, and — because multi-byte integers are fed in
/// explicitly little-endian — stable across platforms, so fingerprints
/// can be persisted and compared between runs and machines. Not a
/// cryptographic hash; collisions are possible but at 64 bits negligible
/// for cache sizes in the thousands.
class Fnv1aHasher {
 public:
  void bytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }

  void u8(std::uint8_t v) { bytes(&v, 1); }

  /// Explicit little-endian byte order, independent of host endianness.
  void u64(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 8);
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Length-prefixed, so consecutive strings cannot alias ("ab","c" vs
  /// "a","bc").
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ull;
};

/// One-shot convenience over a string (the text-level cache key of the
/// analysis service).
inline std::uint64_t fnv1a(std::string_view s) {
  Fnv1aHasher h;
  h.str(s);
  return h.value();
}

}  // namespace hpcgpt
