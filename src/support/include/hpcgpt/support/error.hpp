#pragma once

#include <stdexcept>
#include <string>

namespace hpcgpt {

/// Base class for all errors thrown by the hpcgpt libraries.
///
/// Every subsystem throws a subclass of Error so callers can catch either
/// the precise category (ParseError, ...) or everything hpcgpt-related.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input while parsing text formats (JSON, mini-language, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A caller violated an API precondition (bad shape, empty dataset, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An operation that is well-formed but unsupported by the component
/// (e.g. a detector asked to analyse a program it cannot handle).
class Unsupported : public Error {
 public:
  explicit Unsupported(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `message` when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

}  // namespace hpcgpt
