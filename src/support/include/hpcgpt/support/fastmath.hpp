#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

namespace hpcgpt {

/// Fast exponential for the inference hot loops (attention softmax,
/// SwiGLU): exp(x) = 2^(x·log2 e), with the integer part of the exponent
/// applied through the float exponent bits and the fraction through a
/// degree-7 Taylor polynomial of 2^f on [0, 1).
///
/// Relative error is below 2e-6 — far inside the noise floor of the
/// float32 dot products surrounding it — and unlike std::exp the body is
/// branch-free (the clamp compiles to min/max), so compilers vectorize
/// loops over it 8-wide. That matters: a decode step evaluates exp ~1k
/// times, and libm's scalar exp was a measurable slice of the decode
/// profile (see EXPERIMENTS.md A7).
inline float fast_expf(float x) {
  constexpr float kLog2e = 1.4426950408889634f;
  // Clamp the base-2 exponent so the bit trick below cannot overflow:
  // 2^±126 spans every magnitude softmax/silu can produce.
  const float z = std::min(std::max(x * kLog2e, -126.0f), 126.0f);
  // Split z into an integer exponent and a fraction by plain truncation
  // (one vectorizable cvttps2dq; std::floor would be a libm call GCC
  // refuses to vectorize). For negative z truncation overshoots floor by
  // one, putting f in (-1, 0] instead of [0, 1) — harmless, because the
  // same ei feeds both the fraction and the exponent bits, so the result
  // is still 2^ei · 2^f = 2^z; the polynomial below is accurate on the
  // whole of (-1, 1).
  const std::int32_t ei = static_cast<std::int32_t>(z);
  const float f = z - static_cast<float>(ei);
  // 2^f = exp(f·ln2): Taylor coefficients ln2^k / k!.
  float p = 1.52527338e-5f;
  p = p * f + 1.54035304e-4f;
  p = p * f + 1.33335581e-3f;
  p = p * f + 9.61812911e-3f;
  p = p * f + 5.55041087e-2f;
  p = p * f + 2.40226507e-1f;
  p = p * f + 6.93147181e-1f;
  p = p * f + 1.0f;
  const auto bits = static_cast<std::uint32_t>(ei + 127) << 23;
  return p * std::bit_cast<float>(bits);
}

}  // namespace hpcgpt
