#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace hpcgpt {

/// A fixed-size worker pool with a shared FIFO task queue.
///
/// This is the shared-memory parallel substrate for the whole repository:
/// the tensor library's GEMM, the data-generation pipeline and the race
/// detector evaluation harness all schedule work through it. The pool is
/// intentionally simple — a mutex-protected deque — because tasks in this
/// codebase are coarse (row blocks, whole test programs), so queue
/// contention is negligible.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers. Used by
  /// parallel_for to run nested parallel regions inline instead of
  /// re-submitting to the pool — a worker that blocked waiting on chunks
  /// it queued behind itself would deadlock the pool.
  bool on_worker_thread() const noexcept;

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    available_.notify_one();
    return result;
  }

  /// The process-wide default pool, sized to the hardware.
  static ThreadPool& global();

  /// True while a ParallelInlineGuard is alive on the calling thread.
  static bool inline_region_active() noexcept;

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// RAII scope that forces every parallel_for issued from the calling
/// thread to run inline (single-threaded), regardless of which pool it
/// targets. This is how an outer parallel engine — the data-parallel
/// trainer runs one model replica per OS thread — keeps the inner tensor
/// kernels from re-submitting row blocks to the global pool: without the
/// guard, W trainer threads would funnel their GEMM chunks through the
/// global queue, serializing on its workers instead of using their own
/// core. Nestable; the effect ends when the outermost guard dies.
class ParallelInlineGuard {
 public:
  ParallelInlineGuard();
  ~ParallelInlineGuard();
  ParallelInlineGuard(const ParallelInlineGuard&) = delete;
  ParallelInlineGuard& operator=(const ParallelInlineGuard&) = delete;
};

/// Runs `body(i)` for every i in [begin, end), split into contiguous chunks
/// across `pool`. Blocks until all chunks complete. Exceptions thrown by
/// `body` propagate to the caller (the first one wins).
///
/// The chunking is static — (end-begin) is divided evenly across workers —
/// which matches the regular, equally-sized iterations this codebase
/// produces (tensor rows, test cases). `grain` bounds the minimum chunk so
/// tiny ranges run inline without synchronization cost.
///
/// Safe to call from inside a task running on `pool`: a nested call runs
/// the whole range inline on the calling worker (never self-deadlocks).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace hpcgpt
