#pragma once

#include <cstdint>
#include <limits>

namespace hpcgpt {

/// Deterministic, fast, splittable pseudo-random generator.
///
/// All randomized components in the repository (data generation, model
/// initialization, interpreter schedules) take an explicit Rng so that every
/// experiment is reproducible from a single seed. The engine is
/// xoshiro256** seeded via splitmix64; it satisfies the C++
/// UniformRandomBitGenerator requirements so it can also drive <random>
/// distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Re-initializes the state from `seed` (splitmix64 expansion).
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Standard normal via Box–Muller (one value per call, no caching).
  double next_gaussian() {
    double u1 = next_double();
    while (u1 <= 0.0) u1 = next_double();
    const double u2 = next_double();
    constexpr double two_pi = 6.283185307179586476925286766559;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(two_pi * u2);
  }

  /// Bernoulli trial with success probability `p`.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// A statistically independent child generator (for per-worker streams).
  Rng split() { return Rng((*this)() ^ 0xdeadbeefcafef00dULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Fisher–Yates shuffle of a random-access container using `rng`.
template <typename Container>
void shuffle(Container& items, Rng& rng) {
  if (items.size() < 2) return;
  for (std::size_t i = items.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i + 1));
    using std::swap;
    swap(items[i], items[j]);
  }
}

/// Picks a uniformly random element (const reference) from `items`.
template <typename Container>
const typename Container::value_type& choice(const Container& items,
                                             Rng& rng) {
  return items[static_cast<std::size_t>(rng.next_below(items.size()))];
}

}  // namespace hpcgpt
