#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hpcgpt::strings {

/// Splits `text` on `sep` (single character). Adjacent separators produce
/// empty fields, like Python's str.split(sep).
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on runs of ASCII whitespace; never produces empty fields.
std::vector<std::string> split_whitespace(std::string_view text);

/// Joins `parts` with `sep` between adjacent elements.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// True when `text` begins with `prefix` / ends with `suffix`.
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// True when `needle` occurs in `haystack` ignoring ASCII case.
bool icontains(std::string_view haystack, std::string_view needle);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// Number of whitespace-separated words.
std::size_t word_count(std::string_view text);

/// Lowercased words with punctuation stripped from both ends — the shared
/// normalization used by similarity metrics and the TF-IDF embedder.
std::vector<std::string> normalized_words(std::string_view text);

}  // namespace hpcgpt::strings
