#pragma once

#include <chrono>

namespace hpcgpt {

/// Wall-clock stopwatch used by benches and the training loop to report
/// elapsed time without depending on the benchmark framework.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hpcgpt
