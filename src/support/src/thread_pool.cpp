#include "hpcgpt/support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace hpcgpt {

namespace {

// The pool (if any) whose worker_loop owns the current thread.
thread_local const ThreadPool* current_pool = nullptr;

// Depth of ParallelInlineGuard scopes alive on the current thread.
thread_local int inline_region_depth = 0;

}  // namespace

bool ThreadPool::on_worker_thread() const noexcept {
  return current_pool == this;
}

bool ThreadPool::inline_region_active() noexcept {
  return inline_region_depth > 0;
}

ParallelInlineGuard::ParallelInlineGuard() { ++inline_region_depth; }

ParallelInlineGuard::~ParallelInlineGuard() { --inline_region_depth; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  if (begin >= end) return;
  if (ThreadPool::inline_region_active()) {
    // An outer engine owns this thread's parallelism (see
    // ParallelInlineGuard): run the whole range here.
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  if (pool.on_worker_thread()) {
    // Nested parallel region issued from one of this pool's own workers:
    // run inline. Submitting and waiting here could deadlock — every
    // worker might be blocked inside this wait with the chunks queued
    // behind them.
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t total = end - begin;
  const std::size_t max_chunks =
      std::max<std::size_t>(1, total / std::max<std::size_t>(1, grain));
  const std::size_t chunks = std::min(pool.size(), max_chunks);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::future<void>> pending;
  pending.reserve(chunks);

  const std::size_t per_chunk = (total + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per_chunk;
    const std::size_t hi = std::min(end, lo + per_chunk);
    if (lo >= hi) break;
    pending.push_back(pool.submit([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi && !failed.load(); ++i) body(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
    }));
  }
  for (auto& f : pending) f.wait();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for(ThreadPool::global(), begin, end, body, grain);
}

}  // namespace hpcgpt
