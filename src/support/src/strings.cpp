#include "hpcgpt/support/strings.hpp"

#include <algorithm>
#include <cctype>

namespace hpcgpt::strings {

namespace {

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), lower);
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const auto it = std::search(
      haystack.begin(), haystack.end(), needle.begin(), needle.end(),
      [](char a, char b) { return lower(a) == lower(b); });
  return it != haystack.end();
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  for (;;) {
    const std::size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::size_t word_count(std::string_view text) {
  return split_whitespace(text).size();
}

std::vector<std::string> normalized_words(std::string_view text) {
  std::vector<std::string> words = split_whitespace(text);
  std::vector<std::string> out;
  out.reserve(words.size());
  for (auto& word : words) {
    std::size_t begin = 0;
    std::size_t end = word.size();
    const auto is_punct = [](char c) {
      return std::ispunct(static_cast<unsigned char>(c)) != 0;
    };
    while (begin < end && is_punct(word[begin])) ++begin;
    while (end > begin && is_punct(word[end - 1])) --end;
    if (begin == end) continue;
    std::string cleaned = word.substr(begin, end - begin);
    std::transform(cleaned.begin(), cleaned.end(), cleaned.begin(), lower);
    out.push_back(std::move(cleaned));
  }
  return out;
}

}  // namespace hpcgpt::strings
