#pragma once

#include <string>

#include "hpcgpt/minilang/ast.hpp"

namespace hpcgpt::minilang {

/// Surface syntax flavours for rendering. The paper evaluates both the
/// C/C++ and the Fortran halves of DataRaceBench; the mini-language renders
/// to either flavour so the LLM-based methods see two distinct languages.
enum class Flavor { C, Fortran };

/// Renders `program` as complete source text in the requested flavour:
/// C-flavoured output looks like a DataRaceBench micro-benchmark
/// (includes, globals, main, `#pragma omp ...`); Fortran-flavoured output
/// is a `program ... end program` unit with `!$omp` sentinels and
/// 1-based array indexing.
std::string render(const Program& program, Flavor flavor);

/// Renders just an expression (C flavour), used in diagnostics.
std::string render_expr(const Expr& expr);

/// Renders only the executable statements (no includes, declarations or
/// main scaffold) — the code-snippet form embedded in Task-2 instructions
/// (Table 1) and consumed by the LLM-based methods.
std::string render_snippet(const Program& program, Flavor flavor);

/// Human-readable flavour name ("C/C++" / "Fortran"), matching Table 5.
std::string flavor_name(Flavor flavor);

}  // namespace hpcgpt::minilang
