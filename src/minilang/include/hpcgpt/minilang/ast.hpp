#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hpcgpt::minilang {

/// The OpenMP mini-language.
///
/// This is the substrate standing in for the C/C++ and Fortran programs of
/// DataRaceBench: a small imperative language with scalars, 1-D arrays,
/// sequential and OpenMP-style parallel loops, parallel regions,
/// data-sharing clauses, reductions, critical/atomic/barrier
/// synchronization, and simd/target directive flags. Programs are built as
/// ASTs (by the hpcgpt::drb generators), rendered to C-flavoured or
/// Fortran-flavoured source text (for the LLM-based methods), executed by
/// the hpcgpt::race interpreter (for the dynamic detectors) and analysed
/// statically (for the LLOV-style detector).

/// Expression node. A single tagged struct keeps the tree compact; only
/// the fields implied by `kind` are meaningful.
struct Expr {
  enum class Kind {
    IntLit,     ///< value
    ScalarRef,  ///< name
    ArrayRef,   ///< name, index
    ThreadId,   ///< omp_get_thread_num()
    BinOp,      ///< op, lhs, rhs
  };

  Kind kind = Kind::IntLit;
  std::int64_t value = 0;           // IntLit
  std::string name;                 // ScalarRef / ArrayRef
  std::unique_ptr<Expr> index;      // ArrayRef
  /// BinOp operator: arithmetic + - * / % and comparisons
  /// '<' '>' 'q' (==) 'n' (!=), which evaluate to 0/1.
  char op = '+';
  std::unique_ptr<Expr> lhs, rhs;   // BinOp

  Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;
  Expr(Expr&&) = default;
  Expr& operator=(Expr&&) = default;

  std::unique_ptr<Expr> clone() const;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr int_lit(std::int64_t v);
ExprPtr scalar_ref(std::string name);
ExprPtr array_ref(std::string name, ExprPtr index);
ExprPtr thread_id();
ExprPtr bin_op(char op, ExprPtr lhs, ExprPtr rhs);

/// Reduction clause entry: `reduction(op:var)`.
struct Reduction {
  char op = '+';  // + or * (enough for the generated kernels)
  std::string var;
};

/// OpenMP clauses attached to a parallel construct.
struct Clauses {
  std::vector<std::string> priv;          ///< private(...)
  std::vector<std::string> firstprivate;  ///< firstprivate(...)
  std::vector<std::string> shared;        ///< shared(...) (documentation only)
  std::vector<Reduction> reductions;      ///< reduction(op:var)
  bool simd = false;    ///< `omp simd` / `omp parallel for simd`
  bool target = false;  ///< `omp target teams distribute parallel for`
  std::size_t num_threads = 0;  ///< 0 = runtime default

  Clauses clone() const { return *this; }
  bool is_private(const std::string& name) const;
  bool is_reduction(const std::string& name) const;
};

/// Statement node.
struct Stmt {
  enum class Kind {
    Assign,          ///< target[=ArrayRef|ScalarRef] = expr
    SeqFor,          ///< sequential loop: var in [lo, hi)
    ParallelFor,     ///< omp parallel for (clauses apply)
    ParallelRegion,  ///< omp parallel (body runs once per thread)
    Critical,        ///< omp critical { body }
    Atomic,          ///< omp atomic: single Assign on scalar/array elem
    Barrier,         ///< omp barrier (inside ParallelRegion)
    Master,          ///< omp master { body } (thread 0 only, no barrier)
    Single,          ///< omp single { body } (one thread, implicit barrier)
    If,              ///< if (cond) { body } — makes races input-dependent
  };

  Kind kind = Kind::Assign;

  // Assign / Atomic
  ExprPtr target;  // ScalarRef or ArrayRef
  ExprPtr value;

  // If
  ExprPtr cond;

  // SeqFor / ParallelFor
  std::string loop_var;
  ExprPtr lo, hi;  // half-open [lo, hi)

  // ParallelFor / ParallelRegion
  Clauses clauses;

  // Compound bodies (SeqFor/ParallelFor iterate body; regions contain it)
  std::vector<Stmt> body;

  Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;
  Stmt(Stmt&&) = default;
  Stmt& operator=(Stmt&&) = default;

  Stmt clone() const;
};

/// Variable declaration at program scope.
struct VarDecl {
  std::string name;
  bool is_array = false;
  std::int64_t size = 0;      ///< array length (elements)
  std::int64_t init = 0;      ///< scalar initial value / array fill
};

/// A complete mini-language program (one translation unit).
struct Program {
  std::string name;
  std::vector<VarDecl> decls;
  std::vector<Stmt> body;

  Program() = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  Program clone() const;

  /// Declaration lookup; returns nullptr when absent.
  const VarDecl* find_decl(const std::string& var) const;
};

// ---- statement factories (used by generators and tests) ----

Stmt assign(ExprPtr target, ExprPtr value);
Stmt seq_for(std::string var, ExprPtr lo, ExprPtr hi, std::vector<Stmt> body);
Stmt parallel_for(std::string var, ExprPtr lo, ExprPtr hi,
                  std::vector<Stmt> body, Clauses clauses = {});
Stmt parallel_region(std::vector<Stmt> body, Clauses clauses = {});
Stmt critical(std::vector<Stmt> body);
Stmt atomic(ExprPtr target, ExprPtr value);
Stmt barrier();
Stmt master(std::vector<Stmt> body);
Stmt single(std::vector<Stmt> body);
Stmt if_stmt(ExprPtr cond, std::vector<Stmt> body);

}  // namespace hpcgpt::minilang
