#pragma once

#include <string>
#include <string_view>

#include "hpcgpt/minilang/ast.hpp"

namespace hpcgpt::minilang {

/// Parses C-flavoured mini-language source (the subset produced by
/// render(..., Flavor::C)) back into a Program.
///
/// This is the entry point used when a *code snippet* is handed to the
/// system as text — the detectors and the interpreter work on the AST, so
/// textual snippets (like the ones embedded in Task-2 instructions,
/// Table 1) are parsed first. Throws ParseError on input outside the
/// subset.
Program parse_c(std::string_view source);

/// Parses Fortran-flavoured mini-language source (the subset produced by
/// render(..., Flavor::Fortran)): free-form Fortran with `!$omp`
/// sentinels, `integer ::` declarations, do/end do loops and block
/// if/then. Loop bounds are mapped back to the AST's half-open C
/// convention (the renderer emits `do v = lo + 1, hi`).
Program parse_f(std::string_view source);

/// Dispatches on surface syntax: sources containing `!$omp`/`program`
/// parse as Fortran, otherwise as C.
Program parse_any(std::string_view source);

}  // namespace hpcgpt::minilang
