#pragma once

#include <cstdint>

#include "hpcgpt/minilang/ast.hpp"

namespace hpcgpt::minilang {

/// Structural content hashes over the mini-language AST.
///
/// fingerprint(*) hashes a node exactly as built: two programs
/// fingerprint identically when they have the same declaration set (order
/// ignored — it carries no semantics), the same statement tree, the same
/// clauses and literals. `Program::name` is deliberately excluded —
/// analysis results do not depend on it, so a renamed but otherwise
/// untouched function can still hit the analysis cache.
std::uint64_t fingerprint(const Expr& expr);
std::uint64_t fingerprint(const Stmt& stmt);
std::uint64_t fingerprint(const Program& program);

/// The *flavour-independent* program hash the analysis service keys its
/// cache on: the fingerprint of the program's C-render → parse normal
/// form. The two renderers represent declaration initializers differently
/// (C materializes init loops, Fortran keeps them on the declaration), so
/// raw ASTs of the same program can disagree across surfaces; the normal
/// form collapses a hand-built AST, its C rendering and its Fortran
/// rendering — plus any whitespace edit of either — onto one
/// representative.
std::uint64_t canonical_fingerprint(const Program& program);

}  // namespace hpcgpt::minilang
