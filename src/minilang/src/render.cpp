#include "hpcgpt/minilang/render.hpp"

#include <algorithm>
#include <sstream>

#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/strings.hpp"

namespace hpcgpt::minilang {

namespace {

// ---------------------------------------------------------------- shared

std::string clause_list(const std::vector<std::string>& vars) {
  return strings::join(vars, ", ");
}

// ---------------------------------------------------------------- C

std::string c_expr(const Expr& e, bool fortran_index = false);

std::string c_expr(const Expr& e, bool /*fortran_index*/) {
  switch (e.kind) {
    case Expr::Kind::IntLit:
      return std::to_string(e.value);
    case Expr::Kind::ScalarRef:
      return e.name;
    case Expr::Kind::ArrayRef:
      return e.name + "[" + c_expr(*e.index) + "]";
    case Expr::Kind::ThreadId:
      return "omp_get_thread_num()";
    case Expr::Kind::BinOp: {
      std::string op(1, e.op);
      if (e.op == 'q') op = "==";
      if (e.op == 'n') op = "!=";
      return "(" + c_expr(*e.lhs) + " " + op + " " + c_expr(*e.rhs) + ")";
    }
  }
  throw InvalidArgument("render: unknown expression kind");
}

std::string c_pragma(const Stmt& s) {
  std::ostringstream out;
  out << "#pragma omp ";
  if (s.kind == Stmt::Kind::ParallelFor) {
    if (s.clauses.target) {
      out << "target teams distribute parallel for";
    } else if (s.clauses.simd) {
      out << "parallel for simd";
    } else {
      out << "parallel for";
    }
  } else {
    out << "parallel";
  }
  if (!s.clauses.priv.empty()) {
    out << " private(" << clause_list(s.clauses.priv) << ")";
  }
  if (!s.clauses.firstprivate.empty()) {
    out << " firstprivate(" << clause_list(s.clauses.firstprivate) << ")";
  }
  if (!s.clauses.shared.empty()) {
    out << " shared(" << clause_list(s.clauses.shared) << ")";
  }
  for (const Reduction& r : s.clauses.reductions) {
    out << " reduction(" << r.op << ":" << r.var << ")";
  }
  if (s.clauses.num_threads > 0) {
    out << " num_threads(" << s.clauses.num_threads << ")";
  }
  return out.str();
}

void c_stmt(const Stmt& s, std::ostringstream& out, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  switch (s.kind) {
    case Stmt::Kind::Assign:
      out << pad << c_expr(*s.target) << " = " << c_expr(*s.value) << ";\n";
      break;
    case Stmt::Kind::SeqFor:
    case Stmt::Kind::ParallelFor: {
      if (s.kind == Stmt::Kind::ParallelFor) {
        out << pad << c_pragma(s) << "\n";
      }
      out << pad << "for (" << s.loop_var << " = " << c_expr(*s.lo) << "; "
          << s.loop_var << " < " << c_expr(*s.hi) << "; " << s.loop_var
          << "++) {\n";
      for (const Stmt& inner : s.body) c_stmt(inner, out, depth + 1);
      out << pad << "}\n";
      break;
    }
    case Stmt::Kind::ParallelRegion: {
      out << pad << c_pragma(s) << "\n" << pad << "{\n";
      for (const Stmt& inner : s.body) c_stmt(inner, out, depth + 1);
      out << pad << "}\n";
      break;
    }
    case Stmt::Kind::Critical:
      out << pad << "#pragma omp critical\n" << pad << "{\n";
      for (const Stmt& inner : s.body) c_stmt(inner, out, depth + 1);
      out << pad << "}\n";
      break;
    case Stmt::Kind::Atomic:
      out << pad << "#pragma omp atomic\n";
      out << pad << c_expr(*s.target) << " = " << c_expr(*s.value) << ";\n";
      break;
    case Stmt::Kind::Barrier:
      out << pad << "#pragma omp barrier\n";
      break;
    case Stmt::Kind::Master:
      out << pad << "#pragma omp master\n" << pad << "{\n";
      for (const Stmt& inner : s.body) c_stmt(inner, out, depth + 1);
      out << pad << "}\n";
      break;
    case Stmt::Kind::Single:
      out << pad << "#pragma omp single\n" << pad << "{\n";
      for (const Stmt& inner : s.body) c_stmt(inner, out, depth + 1);
      out << pad << "}\n";
      break;
    case Stmt::Kind::If:
      out << pad << "if " << c_expr(*s.cond) << " {\n";
      for (const Stmt& inner : s.body) c_stmt(inner, out, depth + 1);
      out << pad << "}\n";
      break;
  }
}

void collect_scalars(const Stmt& s, std::vector<std::string>& loop_vars) {
  if (!s.loop_var.empty()) {
    if (std::find(loop_vars.begin(), loop_vars.end(), s.loop_var) ==
        loop_vars.end()) {
      loop_vars.push_back(s.loop_var);
    }
  }
  for (const Stmt& inner : s.body) collect_scalars(inner, loop_vars);
}

std::string render_c(const Program& p) {
  std::ostringstream out;
  out << "// " << p.name << "\n";
  out << "#include <omp.h>\n#include <stdio.h>\n\n";
  std::vector<std::string> loop_vars;
  for (const Stmt& s : p.body) collect_scalars(s, loop_vars);
  for (const VarDecl& d : p.decls) {
    // Loop variables are re-declared inside main(); emitting them here too
    // would duplicate them after a parse round-trip.
    if (!d.is_array && std::find(loop_vars.begin(), loop_vars.end(),
                                 d.name) != loop_vars.end()) {
      continue;
    }
    if (d.is_array) {
      out << "int " << d.name << "[" << d.size << "];\n";
    } else {
      out << "int " << d.name << " = " << d.init << ";\n";
    }
  }
  out << "\nint main() {\n";
  // Non-zero array fills cannot be expressed in a C declaration of this
  // subset; emit explicit initialization loops so the rendering is
  // semantically complete (and parses back to an equivalent program).
  bool needs_init_var = false;
  for (const VarDecl& d : p.decls) {
    needs_init_var |= (d.is_array && d.init != 0);
  }
  if (needs_init_var &&
      std::find(loop_vars.begin(), loop_vars.end(), "iinit") ==
          loop_vars.end()) {
    loop_vars.push_back("iinit");
  }
  if (!loop_vars.empty()) {
    out << "  int " << strings::join(loop_vars, ", ") << ";\n";
  }
  for (const VarDecl& d : p.decls) {
    if (!d.is_array || d.init == 0) continue;
    out << "  for (iinit = 0; iinit < " << d.size << "; iinit++) {\n"
        << "    " << d.name << "[iinit] = " << d.init << ";\n  }\n";
  }
  for (const Stmt& s : p.body) c_stmt(s, out, 1);
  out << "  return 0;\n}\n";
  return out.str();
}

// ---------------------------------------------------------------- Fortran

std::string f_expr(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::IntLit:
      return std::to_string(e.value);
    case Expr::Kind::ScalarRef:
      return e.name;
    case Expr::Kind::ArrayRef:
      // Indices render verbatim; loop bounds are shifted instead (the do
      // loop runs lo+1..hi), which keeps every affine-in-loop-var
      // subscript consistent with the C flavour under 1-based indexing.
      return e.name + "(" + f_expr(*e.index) + ")";
    case Expr::Kind::ThreadId:
      return "omp_get_thread_num()";
    case Expr::Kind::BinOp: {
      if (e.op == '%') {
        return "mod(" + f_expr(*e.lhs) + ", " + f_expr(*e.rhs) + ")";
      }
      std::string op(1, e.op);
      if (e.op == 'q') op = "==";
      if (e.op == 'n') op = "/=";
      return "(" + f_expr(*e.lhs) + " " + op + " " + f_expr(*e.rhs) + ")";
    }
  }
  throw InvalidArgument("render: unknown expression kind");
}

std::string f_directive(const Stmt& s, bool open) {
  std::ostringstream out;
  out << "!$omp ";
  std::string construct;
  if (s.kind == Stmt::Kind::ParallelFor) {
    if (s.clauses.target) {
      construct = "target teams distribute parallel do";
    } else if (s.clauses.simd) {
      construct = "parallel do simd";
    } else {
      construct = "parallel do";
    }
  } else {
    construct = "parallel";
  }
  if (!open) {
    out << "end " << construct;
    return out.str();
  }
  out << construct;
  if (!s.clauses.priv.empty()) {
    out << " private(" << clause_list(s.clauses.priv) << ")";
  }
  if (!s.clauses.firstprivate.empty()) {
    out << " firstprivate(" << clause_list(s.clauses.firstprivate) << ")";
  }
  if (!s.clauses.shared.empty()) {
    out << " shared(" << clause_list(s.clauses.shared) << ")";
  }
  for (const Reduction& r : s.clauses.reductions) {
    out << " reduction(" << r.op << ":" << r.var << ")";
  }
  if (s.clauses.num_threads > 0) {
    out << " num_threads(" << s.clauses.num_threads << ")";
  }
  return out.str();
}

void f_stmt(const Stmt& s, std::ostringstream& out, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  switch (s.kind) {
    case Stmt::Kind::Assign:
      out << pad << f_expr(*s.target) << " = " << f_expr(*s.value) << "\n";
      break;
    case Stmt::Kind::SeqFor:
    case Stmt::Kind::ParallelFor: {
      if (s.kind == Stmt::Kind::ParallelFor) {
        out << pad << f_directive(s, true) << "\n";
      }
      out << pad << "do " << s.loop_var << " = " << f_expr(*s.lo) << " + 1, "
          << f_expr(*s.hi) << "\n";
      for (const Stmt& inner : s.body) f_stmt(inner, out, depth + 1);
      out << pad << "end do\n";
      if (s.kind == Stmt::Kind::ParallelFor) {
        out << pad << f_directive(s, false) << "\n";
      }
      break;
    }
    case Stmt::Kind::ParallelRegion: {
      out << pad << f_directive(s, true) << "\n";
      for (const Stmt& inner : s.body) f_stmt(inner, out, depth + 1);
      out << pad << "!$omp end parallel\n";
      break;
    }
    case Stmt::Kind::Critical:
      out << pad << "!$omp critical\n";
      for (const Stmt& inner : s.body) f_stmt(inner, out, depth + 1);
      out << pad << "!$omp end critical\n";
      break;
    case Stmt::Kind::Atomic:
      out << pad << "!$omp atomic\n";
      out << pad << f_expr(*s.target) << " = " << f_expr(*s.value) << "\n";
      break;
    case Stmt::Kind::Barrier:
      out << pad << "!$omp barrier\n";
      break;
    case Stmt::Kind::Master:
      out << pad << "!$omp master\n";
      for (const Stmt& inner : s.body) f_stmt(inner, out, depth + 1);
      out << pad << "!$omp end master\n";
      break;
    case Stmt::Kind::Single:
      out << pad << "!$omp single\n";
      for (const Stmt& inner : s.body) f_stmt(inner, out, depth + 1);
      out << pad << "!$omp end single\n";
      break;
    case Stmt::Kind::If:
      out << pad << "if " << f_expr(*s.cond) << " then\n";
      for (const Stmt& inner : s.body) f_stmt(inner, out, depth + 1);
      out << pad << "end if\n";
      break;
  }
}

std::string render_fortran(const Program& p) {
  std::ostringstream out;
  out << "! " << p.name << "\n";
  out << "program " << strings::replace_all(p.name, "-", "_") << "\n";
  out << "  use omp_lib\n  implicit none\n";
  std::vector<std::string> loop_vars;
  for (const Stmt& s : p.body) collect_scalars(s, loop_vars);
  for (const VarDecl& d : p.decls) {
    // Loop variables get their own declaration line below.
    if (!d.is_array && std::find(loop_vars.begin(), loop_vars.end(),
                                 d.name) != loop_vars.end()) {
      continue;
    }
    if (d.is_array) {
      out << "  integer :: " << d.name << "(" << d.size << ")";
      if (d.init != 0) out << " = " << d.init;  // broadcast initializer
      out << "\n";
    } else {
      out << "  integer :: " << d.name << " = " << d.init << "\n";
    }
  }
  if (!loop_vars.empty()) {
    out << "  integer :: " << strings::join(loop_vars, ", ") << "\n";
  }
  out << "\n";
  for (const Stmt& s : p.body) f_stmt(s, out, 1);
  out << "end program\n";
  return out.str();
}

}  // namespace

std::string render(const Program& program, Flavor flavor) {
  return flavor == Flavor::C ? render_c(program) : render_fortran(program);
}

std::string render_expr(const Expr& expr) { return c_expr(expr); }

std::string render_snippet(const Program& program, Flavor flavor) {
  std::ostringstream out;
  for (const Stmt& s : program.body) {
    if (flavor == Flavor::C) {
      c_stmt(s, out, 0);
    } else {
      f_stmt(s, out, 0);
    }
  }
  return out.str();
}

std::string flavor_name(Flavor flavor) {
  return flavor == Flavor::C ? "C/C++" : "Fortran";
}

}  // namespace hpcgpt::minilang
