#include "hpcgpt/minilang/fingerprint.hpp"

#include <algorithm>
#include <vector>

#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/support/hash.hpp"

namespace hpcgpt::minilang {

namespace {

// Every node is tagged with its kind before its payload, and optional
// children hash a sentinel when absent, so distinct shapes can never
// collide by field reordering.

void hash_expr(Fnv1aHasher& h, const Expr* e) {
  if (e == nullptr) {
    h.u8(0xff);
    return;
  }
  h.u8(static_cast<std::uint8_t>(e->kind));
  switch (e->kind) {
    case Expr::Kind::IntLit:
      h.i64(e->value);
      break;
    case Expr::Kind::ScalarRef:
      h.str(e->name);
      break;
    case Expr::Kind::ArrayRef:
      h.str(e->name);
      hash_expr(h, e->index.get());
      break;
    case Expr::Kind::ThreadId:
      break;
    case Expr::Kind::BinOp:
      h.u8(static_cast<std::uint8_t>(e->op));
      hash_expr(h, e->lhs.get());
      hash_expr(h, e->rhs.get());
      break;
  }
}

void hash_clauses(Fnv1aHasher& h, const Clauses& c) {
  h.u64(c.priv.size());
  for (const std::string& v : c.priv) h.str(v);
  h.u64(c.firstprivate.size());
  for (const std::string& v : c.firstprivate) h.str(v);
  h.u64(c.shared.size());
  for (const std::string& v : c.shared) h.str(v);
  h.u64(c.reductions.size());
  for (const Reduction& r : c.reductions) {
    h.u8(static_cast<std::uint8_t>(r.op));
    h.str(r.var);
  }
  h.u8(c.simd ? 1 : 0);
  h.u8(c.target ? 1 : 0);
  h.u64(c.num_threads);
}

void hash_stmt(Fnv1aHasher& h, const Stmt& s) {
  h.u8(static_cast<std::uint8_t>(s.kind));
  hash_expr(h, s.target.get());
  hash_expr(h, s.value.get());
  hash_expr(h, s.cond.get());
  h.str(s.loop_var);
  hash_expr(h, s.lo.get());
  hash_expr(h, s.hi.get());
  hash_clauses(h, s.clauses);
  h.u64(s.body.size());
  for (const Stmt& inner : s.body) hash_stmt(h, inner);
}

}  // namespace

std::uint64_t fingerprint(const Expr& expr) {
  Fnv1aHasher h;
  hash_expr(h, &expr);
  return h.value();
}

std::uint64_t fingerprint(const Stmt& stmt) {
  Fnv1aHasher h;
  hash_stmt(h, stmt);
  return h.value();
}

std::uint64_t fingerprint(const Program& program) {
  Fnv1aHasher h;
  // Program::name intentionally not hashed (see header). Declarations are
  // hashed in name order: declaration order carries no semantics, and the
  // two renderers emit auxiliary loop-variable declarations in different
  // positions.
  std::vector<const VarDecl*> decls;
  decls.reserve(program.decls.size());
  for (const VarDecl& d : program.decls) decls.push_back(&d);
  std::sort(decls.begin(), decls.end(),
            [](const VarDecl* a, const VarDecl* b) { return a->name < b->name; });
  h.u64(decls.size());
  for (const VarDecl* d : decls) {
    h.str(d->name);
    h.u8(d->is_array ? 1 : 0);
    h.i64(d->size);
    h.i64(d->init);
  }
  h.u64(program.body.size());
  for (const Stmt& s : program.body) hash_stmt(h, s);
  return h.value();
}

std::uint64_t canonical_fingerprint(const Program& program) {
  // Normal form: C render → parse. The C renderer materializes declaration
  // initializers as explicit init loops and the parser is a fixed point
  // over that surface (see the round-trip sweep tests), so a hand-built
  // AST, its C rendering and its Fortran rendering — which keeps
  // initializers on the declarations — all land on one representative.
  return fingerprint(parse_any(render(program, Flavor::C)));
}

}  // namespace hpcgpt::minilang
