#include "hpcgpt/minilang/ast.hpp"

#include <algorithm>

namespace hpcgpt::minilang {

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->value = value;
  out->name = name;
  out->op = op;
  if (index) out->index = index->clone();
  if (lhs) out->lhs = lhs->clone();
  if (rhs) out->rhs = rhs->clone();
  return out;
}

ExprPtr int_lit(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::IntLit;
  e->value = v;
  return e;
}

ExprPtr scalar_ref(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::ScalarRef;
  e->name = std::move(name);
  return e;
}

ExprPtr array_ref(std::string name, ExprPtr index) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::ArrayRef;
  e->name = std::move(name);
  e->index = std::move(index);
  return e;
}

ExprPtr thread_id() {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::ThreadId;
  return e;
}

ExprPtr bin_op(char op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::BinOp;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

bool Clauses::is_private(const std::string& name) const {
  const auto in = [&](const std::vector<std::string>& v) {
    return std::find(v.begin(), v.end(), name) != v.end();
  };
  return in(priv) || in(firstprivate);
}

bool Clauses::is_reduction(const std::string& name) const {
  return std::any_of(reductions.begin(), reductions.end(),
                     [&](const Reduction& r) { return r.var == name; });
}

Stmt Stmt::clone() const {
  Stmt out;
  out.kind = kind;
  if (target) out.target = target->clone();
  if (value) out.value = value->clone();
  if (cond) out.cond = cond->clone();
  out.loop_var = loop_var;
  if (lo) out.lo = lo->clone();
  if (hi) out.hi = hi->clone();
  out.clauses = clauses.clone();
  out.body.reserve(body.size());
  for (const Stmt& s : body) out.body.push_back(s.clone());
  return out;
}

Program Program::clone() const {
  Program out;
  out.name = name;
  out.decls = decls;
  out.body.reserve(body.size());
  for (const Stmt& s : body) out.body.push_back(s.clone());
  return out;
}

const VarDecl* Program::find_decl(const std::string& var) const {
  for (const VarDecl& d : decls) {
    if (d.name == var) return &d;
  }
  return nullptr;
}

Stmt assign(ExprPtr target, ExprPtr value) {
  Stmt s;
  s.kind = Stmt::Kind::Assign;
  s.target = std::move(target);
  s.value = std::move(value);
  return s;
}

Stmt seq_for(std::string var, ExprPtr lo, ExprPtr hi,
             std::vector<Stmt> body) {
  Stmt s;
  s.kind = Stmt::Kind::SeqFor;
  s.loop_var = std::move(var);
  s.lo = std::move(lo);
  s.hi = std::move(hi);
  s.body = std::move(body);
  return s;
}

Stmt parallel_for(std::string var, ExprPtr lo, ExprPtr hi,
                  std::vector<Stmt> body, Clauses clauses) {
  Stmt s;
  s.kind = Stmt::Kind::ParallelFor;
  s.loop_var = std::move(var);
  s.lo = std::move(lo);
  s.hi = std::move(hi);
  s.body = std::move(body);
  s.clauses = std::move(clauses);
  return s;
}

Stmt parallel_region(std::vector<Stmt> body, Clauses clauses) {
  Stmt s;
  s.kind = Stmt::Kind::ParallelRegion;
  s.body = std::move(body);
  s.clauses = std::move(clauses);
  return s;
}

Stmt critical(std::vector<Stmt> body) {
  Stmt s;
  s.kind = Stmt::Kind::Critical;
  s.body = std::move(body);
  return s;
}

Stmt atomic(ExprPtr target, ExprPtr value) {
  Stmt s;
  s.kind = Stmt::Kind::Atomic;
  s.target = std::move(target);
  s.value = std::move(value);
  return s;
}

Stmt barrier() {
  Stmt s;
  s.kind = Stmt::Kind::Barrier;
  return s;
}

Stmt master(std::vector<Stmt> body) {
  Stmt s;
  s.kind = Stmt::Kind::Master;
  s.body = std::move(body);
  return s;
}

Stmt single(std::vector<Stmt> body) {
  Stmt s;
  s.kind = Stmt::Kind::Single;
  s.body = std::move(body);
  return s;
}

Stmt if_stmt(ExprPtr cond, std::vector<Stmt> body) {
  Stmt s;
  s.kind = Stmt::Kind::If;
  s.cond = std::move(cond);
  s.body = std::move(body);
  return s;
}

}  // namespace hpcgpt::minilang
