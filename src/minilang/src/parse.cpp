#include "hpcgpt/minilang/parse.hpp"

#include <cctype>
#include <optional>
#include <vector>

#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/strings.hpp"

namespace hpcgpt::minilang {

namespace {

struct Token {
  enum class Kind { Ident, Number, Punct, Directive, End };
  Kind kind = Kind::End;
  std::string text;
  std::int64_t number = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skip_trivia();
    if (pos_ >= src_.size()) {
      current_ = {Token::Kind::End, "", 0};
      return;
    }
    const char c = src_[pos_];
    if (c == '#') {  // pragma directive: consume to end of line
      const std::size_t eol = src_.find('\n', pos_);
      const std::size_t end = eol == std::string_view::npos ? src_.size() : eol;
      current_ = {Token::Kind::Directive,
                  std::string(strings::trim(src_.substr(pos_, end - pos_))),
                  0};
      pos_ = end;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      current_ = {Token::Kind::Ident,
                  std::string(src_.substr(start, pos_ - start)), 0};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v = 0;
      const std::size_t start = pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        v = v * 10 + (src_[pos_] - '0');
        ++pos_;
      }
      current_ = {Token::Kind::Number,
                  std::string(src_.substr(start, pos_ - start)), v};
      return;
    }
    // multi-char punctuation used by the renderer
    for (const std::string_view op : {"++", "<=", ">=", "==", "!="}) {
      if (src_.substr(pos_, op.size()) == op) {
        current_ = {Token::Kind::Punct, std::string(op), 0};
        pos_ += op.size();
        return;
      }
    }
    current_ = {Token::Kind::Punct, std::string(1, c), 0};
    ++pos_;
  }

  void skip_trivia() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      if (src_.substr(pos_, 2) == "//") {
        const std::size_t eol = src_.find('\n', pos_);
        pos_ = eol == std::string_view::npos ? src_.size() : eol + 1;
        continue;
      }
      if (src_.substr(pos_, 2) == "/*") {
        const std::size_t close = src_.find("*/", pos_ + 2);
        if (close == std::string_view::npos)
          throw ParseError("minilang: unterminated block comment");
        pos_ = close + 2;
        continue;
      }
      return;
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  Program parse_program() {
    Program p;
    p.name = "parsed_snippet";
    // Optional preamble: #include directives are Directive tokens too.
    while (lex_.peek().kind == Token::Kind::Directive &&
           strings::starts_with(lex_.peek().text, "#include")) {
      lex_.take();
    }
    // Global declarations until `int main`.
    while (lex_.peek().kind == Token::Kind::Ident &&
           lex_.peek().text == "int") {
      // Lookahead is one token, so take `int` and branch on what follows.
      lex_.take();
      Token name = expect_ident();
      if (name.text == "main") {
        parse_main_into(p);
        return p;
      }
      parse_decl_tail(p, name.text, /*allow_comma_scalars=*/false);
    }
    if (lex_.peek().kind != Token::Kind::End) {
      // Bare snippet without main(): parse statements directly.
      while (lex_.peek().kind != Token::Kind::End) {
        p.body.push_back(parse_stmt());
      }
      return p;
    }
    return p;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw ParseError("minilang: " + why + " near '" + lex_.peek().text + "'");
  }

  Token expect_ident() {
    if (lex_.peek().kind != Token::Kind::Ident) fail("expected identifier");
    return lex_.take();
  }

  void expect_punct(std::string_view p) {
    if (lex_.peek().kind != Token::Kind::Punct || lex_.peek().text != p) {
      fail(std::string("expected '") + std::string(p) + "'");
    }
    lex_.take();
  }

  bool accept_punct(std::string_view p) {
    if (lex_.peek().kind == Token::Kind::Punct && lex_.peek().text == p) {
      lex_.take();
      return true;
    }
    return false;
  }

  std::int64_t expect_number_signed() {
    bool negative = accept_punct("-");
    if (lex_.peek().kind != Token::Kind::Number) fail("expected number");
    const std::int64_t v = lex_.take().number;
    return negative ? -v : v;
  }

  /// After `int <name>` at global scope: array or initialized scalar.
  void parse_decl_tail(Program& p, const std::string& name,
                       bool allow_comma_scalars) {
    VarDecl d;
    d.name = name;
    if (accept_punct("[")) {
      d.is_array = true;
      d.size = expect_number_signed();
      expect_punct("]");
    } else if (accept_punct("=")) {
      d.init = expect_number_signed();
    }
    p.decls.push_back(d);
    if (allow_comma_scalars) {
      while (accept_punct(",")) {
        VarDecl extra;
        extra.name = expect_ident().text;
        if (accept_punct("=")) extra.init = expect_number_signed();
        p.decls.push_back(extra);
      }
    }
    expect_punct(";");
  }

  void parse_main_into(Program& p) {
    expect_punct("(");
    expect_punct(")");
    expect_punct("{");
    while (!accept_punct("}")) {
      if (lex_.peek().kind == Token::Kind::Ident &&
          lex_.peek().text == "int") {
        // local loop-variable declarations: `int i, tmp;` — locals are
        // recorded as scalar decls so the interpreter can address them.
        lex_.take();
        const Token first = expect_ident();
        parse_decl_tail(p, first.text, /*allow_comma_scalars=*/true);
        continue;
      }
      if (lex_.peek().kind == Token::Kind::Ident &&
          lex_.peek().text == "return") {
        lex_.take();
        expect_number_signed();
        expect_punct(";");
        continue;
      }
      p.body.push_back(parse_stmt());
    }
  }

  Clauses parse_clauses(const std::string& directive) {
    Clauses c;
    c.simd = directive.find(" simd") != std::string::npos;
    c.target = directive.find(" target") != std::string::npos;
    // Scan `name(arg, ...)` clause occurrences.
    const auto scan = [&](const std::string& key)
        -> std::vector<std::string> {
      std::vector<std::string> out;
      std::size_t pos = 0;
      while ((pos = directive.find(key + "(", pos)) != std::string::npos) {
        // Reject matches inside longer words (e.g. firstprivate vs private).
        if (pos > 0 && (std::isalnum(static_cast<unsigned char>(
                            directive[pos - 1])) ||
                        directive[pos - 1] == '_')) {
          pos += key.size();
          continue;
        }
        const std::size_t open = pos + key.size();
        const std::size_t close = directive.find(')', open);
        if (close == std::string::npos) break;
        for (const std::string& item : strings::split(
                 directive.substr(open + 1, close - open - 1), ',')) {
          out.push_back(std::string(strings::trim(item)));
        }
        pos = close;
      }
      return out;
    };
    c.priv = scan("private");
    c.firstprivate = scan("firstprivate");
    c.shared = scan("shared");
    for (const std::string& r : scan("reduction")) {
      const auto parts = strings::split(r, ':');
      if (parts.size() == 2) {
        Reduction red;
        red.op = strings::trim(parts[0]).empty()
                     ? '+'
                     : std::string(strings::trim(parts[0]))[0];
        red.var = std::string(strings::trim(parts[1]));
        c.reductions.push_back(red);
      }
    }
    for (const std::string& n : scan("num_threads")) {
      c.num_threads = static_cast<std::size_t>(std::stoll(n));
    }
    return c;
  }

  Stmt parse_stmt() {
    if (lex_.peek().kind == Token::Kind::Directive) {
      return parse_directive_stmt();
    }
    if (lex_.peek().kind == Token::Kind::Ident &&
        lex_.peek().text == "for") {
      return parse_for(/*parallel=*/false, Clauses{});
    }
    if (lex_.peek().kind == Token::Kind::Ident &&
        lex_.peek().text == "if") {
      lex_.take();
      ExprPtr cond = parse_cmp();
      return if_stmt(std::move(cond), parse_block());
    }
    if (lex_.peek().kind == Token::Kind::Ident) {
      Stmt s = parse_assign();
      expect_punct(";");
      return s;
    }
    fail("expected statement");
  }

  Stmt parse_directive_stmt() {
    const std::string directive = lex_.take().text;
    require(strings::starts_with(directive, "#pragma omp"),
            "minilang: unsupported directive " + directive);
    const std::string rest = directive.substr(11);
    if (rest.find("critical") != std::string::npos) {
      return critical(parse_block());
    }
    if (rest.find("atomic") != std::string::npos) {
      Stmt a = parse_assign();
      expect_punct(";");
      a.kind = Stmt::Kind::Atomic;
      return a;
    }
    if (rest.find("barrier") != std::string::npos) {
      return barrier();
    }
    if (rest.find("master") != std::string::npos) {
      return master(parse_block());
    }
    if (rest.find("single") != std::string::npos) {
      return single(parse_block());
    }
    const Clauses clauses = parse_clauses(directive);
    if (rest.find("for") != std::string::npos ||
        rest.find("distribute") != std::string::npos) {
      return parse_for(/*parallel=*/true, clauses);
    }
    if (rest.find("parallel") != std::string::npos) {
      return parallel_region(parse_block(), clauses);
    }
    fail("unsupported OpenMP construct: " + directive);
  }

  std::vector<Stmt> parse_block() {
    std::vector<Stmt> body;
    if (accept_punct("{")) {
      while (!accept_punct("}")) body.push_back(parse_stmt());
    } else {
      body.push_back(parse_stmt());
    }
    return body;
  }

  Stmt parse_for(bool parallel, Clauses clauses) {
    const Token kw = expect_ident();
    if (kw.text != "for") fail("expected 'for' after omp for directive");
    expect_punct("(");
    const std::string var = expect_ident().text;
    expect_punct("=");
    ExprPtr lo = parse_expr();
    expect_punct(";");
    const std::string var2 = expect_ident().text;
    if (var2 != var) fail("loop variable mismatch");
    expect_punct("<");
    ExprPtr hi = parse_expr();
    expect_punct(";");
    const std::string var3 = expect_ident().text;
    if (var3 != var) fail("loop variable mismatch in increment");
    expect_punct("++");
    expect_punct(")");
    std::vector<Stmt> body = parse_block();
    if (parallel) {
      return parallel_for(var, std::move(lo), std::move(hi), std::move(body),
                          std::move(clauses));
    }
    return seq_for(var, std::move(lo), std::move(hi), std::move(body));
  }

  Stmt parse_assign() {
    ExprPtr target = parse_primary();
    if (target->kind != Expr::Kind::ScalarRef &&
        target->kind != Expr::Kind::ArrayRef) {
      fail("assignment target must be a variable or array element");
    }
    expect_punct("=");
    ExprPtr value = parse_expr();
    return assign(std::move(target), std::move(value));
  }

  // cmp := expr (('<'|'>'|'=='|'!=') expr)?
  ExprPtr parse_cmp() {
    ExprPtr left = parse_expr();
    if (accept_punct("<")) return bin_op('<', std::move(left), parse_expr());
    if (accept_punct(">")) return bin_op('>', std::move(left), parse_expr());
    if (accept_punct("==")) return bin_op('q', std::move(left), parse_expr());
    if (accept_punct("!=")) return bin_op('n', std::move(left), parse_expr());
    return left;
  }

  // expr := term (('+'|'-') term)* ; term := primary (('*'|'/'|'%') primary)*
  ExprPtr parse_expr() {
    ExprPtr left = parse_term();
    for (;;) {
      if (accept_punct("+")) {
        left = bin_op('+', std::move(left), parse_term());
      } else if (accept_punct("-")) {
        left = bin_op('-', std::move(left), parse_term());
      } else {
        return left;
      }
    }
  }

  ExprPtr parse_term() {
    ExprPtr left = parse_primary();
    for (;;) {
      if (accept_punct("*")) {
        left = bin_op('*', std::move(left), parse_primary());
      } else if (accept_punct("/")) {
        left = bin_op('/', std::move(left), parse_primary());
      } else if (accept_punct("%")) {
        left = bin_op('%', std::move(left), parse_primary());
      } else {
        return left;
      }
    }
  }

  ExprPtr parse_primary() {
    if (accept_punct("(")) {
      ExprPtr inner = parse_cmp();
      expect_punct(")");
      return inner;
    }
    if (accept_punct("-")) {
      return bin_op('-', int_lit(0), parse_primary());
    }
    if (lex_.peek().kind == Token::Kind::Number) {
      return int_lit(lex_.take().number);
    }
    const Token id = expect_ident();
    if (id.text == "omp_get_thread_num") {
      expect_punct("(");
      expect_punct(")");
      return thread_id();
    }
    if (accept_punct("[")) {
      ExprPtr index = parse_expr();
      expect_punct("]");
      return array_ref(id.text, std::move(index));
    }
    return scalar_ref(id.text);
  }

  Lexer lex_;
};

}  // namespace

Program parse_c(std::string_view source) {
  Parser parser(source);
  return parser.parse_program();
}

}  // namespace hpcgpt::minilang
