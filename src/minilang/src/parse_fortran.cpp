#include <cctype>
#include <optional>

#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/strings.hpp"

namespace hpcgpt::minilang {

namespace {

/// Line-oriented Fortran front end: free-form source is split into
/// trimmed logical lines; `!$omp` sentinels survive as directive lines,
/// plain `!` comments are dropped.
struct Line {
  std::string text;       // trimmed
  bool is_directive = false;
};

std::vector<Line> logical_lines(std::string_view source) {
  std::vector<Line> out;
  for (const std::string& raw : strings::split(source, '\n')) {
    std::string line(strings::trim(raw));
    if (line.empty()) continue;
    if (strings::starts_with(line, "!$omp")) {
      out.push_back({std::move(line), true});
      continue;
    }
    if (line[0] == '!') continue;  // comment
    out.push_back({std::move(line), false});
  }
  return out;
}

/// Expression parser over one Fortran line fragment (the grammar matches
/// what the renderer emits: arithmetic, comparisons, mod(), identifiers,
/// name(index) array refs, omp_get_thread_num()).
class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  ExprPtr parse_all() {
    ExprPtr e = parse_cmp();
    skip_ws();
    if (pos_ != text_.size()) {
      throw ParseError("fortran: trailing tokens in expression '" +
                       std::string(text_) + "'");
    }
    return e;
  }

  ExprPtr parse_cmp() {
    ExprPtr left = parse_sum();
    skip_ws();
    if (accept("==")) return bin_op('q', std::move(left), parse_sum());
    if (accept("/=")) return bin_op('n', std::move(left), parse_sum());
    if (accept("<")) return bin_op('<', std::move(left), parse_sum());
    if (accept(">")) return bin_op('>', std::move(left), parse_sum());
    return left;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool accept(std::string_view token) {
    skip_ws();
    if (text_.substr(pos_, token.size()) == token) {
      // Avoid matching '<' of '<=' etc.; the renderer never emits those,
      // so a plain prefix match suffices.
      pos_ += token.size();
      return true;
    }
    return false;
  }

  ExprPtr parse_sum() {
    ExprPtr left = parse_term();
    for (;;) {
      if (accept("+")) {
        left = bin_op('+', std::move(left), parse_term());
      } else if (accept("-")) {
        left = bin_op('-', std::move(left), parse_term());
      } else {
        return left;
      }
    }
  }

  ExprPtr parse_term() {
    ExprPtr left = parse_primary();
    for (;;) {
      if (accept("*")) {
        left = bin_op('*', std::move(left), parse_primary());
      } else if (accept("/") && !last_was_slash_eq()) {
        left = bin_op('/', std::move(left), parse_primary());
      } else {
        return left;
      }
    }
  }

  bool last_was_slash_eq() {
    // accept("/") above must not consume the '/' of '/='. If the next
    // char is '=', undo and stop.
    if (pos_ < text_.size() && text_[pos_] == '=') {
      --pos_;
      return true;
    }
    return false;
  }

  ExprPtr parse_primary() {
    skip_ws();
    if (accept("(")) {
      ExprPtr inner = parse_cmp();
      if (!accept(")")) throw ParseError("fortran: expected ')'");
      return inner;
    }
    if (accept("-")) {
      return bin_op('-', int_lit(0), parse_primary());
    }
    if (pos_ < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      std::int64_t v = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        v = v * 10 + (text_[pos_] - '0');
        ++pos_;
      }
      return int_lit(v);
    }
    // identifier
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw ParseError("fortran: expected expression near '" +
                       std::string(text_.substr(pos_)) + "'");
    }
    std::string name(text_.substr(start, pos_ - start));
    if (name == "omp_get_thread_num") {
      if (!accept("(") || !accept(")")) {
        throw ParseError("fortran: malformed omp_get_thread_num()");
      }
      return thread_id();
    }
    if (name == "mod") {
      if (!accept("(")) throw ParseError("fortran: malformed mod()");
      ExprPtr a = parse_cmp();
      if (!accept(",")) throw ParseError("fortran: mod() expects 2 args");
      ExprPtr b = parse_cmp();
      if (!accept(")")) throw ParseError("fortran: unterminated mod()");
      return bin_op('%', std::move(a), std::move(b));
    }
    skip_ws();
    if (accept("(")) {
      ExprPtr index = parse_cmp();
      if (!accept(")")) throw ParseError("fortran: unterminated subscript");
      return array_ref(std::move(name), std::move(index));
    }
    return scalar_ref(std::move(name));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

ExprPtr parse_expr_text(std::string_view text) {
  return ExprParser(text).parse_all();
}

/// Statement-level parser over the logical lines.
class FortranParser {
 public:
  explicit FortranParser(std::vector<Line> lines)
      : lines_(std::move(lines)) {}

  Program parse() {
    Program p;
    p.name = "parsed_fortran";
    // Header: program <name>, use/implicit lines, declarations.
    while (pos_ < lines_.size()) {
      const std::string& t = lines_[pos_].text;
      if (strings::starts_with(t, "program ")) {
        p.name = std::string(strings::trim(t.substr(8)));
        ++pos_;
      } else if (strings::starts_with(t, "use ") ||
                 strings::starts_with(t, "implicit ")) {
        ++pos_;
      } else if (strings::starts_with(t, "integer ::")) {
        parse_decl_line(t.substr(10), p);
        ++pos_;
      } else {
        break;
      }
    }
    while (pos_ < lines_.size() && lines_[pos_].text != "end program") {
      p.body.push_back(parse_stmt());
    }
    return p;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw ParseError("fortran: " + why +
                     (pos_ < lines_.size()
                          ? " near '" + lines_[pos_].text + "'"
                          : " at end of input"));
  }

  const std::string& current() {
    if (pos_ >= lines_.size()) fail("unexpected end of input");
    return lines_[pos_].text;
  }

  void parse_decl_line(std::string_view rest, Program& p) {
    // `a(100)` or `x = 0` or `i, j, tmp`
    for (const std::string& piece : strings::split(rest, ',')) {
      const std::string item(strings::trim(piece));
      if (item.empty()) continue;
      VarDecl d;
      const std::size_t paren = item.find('(');
      const std::size_t eq = item.find('=');
      if (paren != std::string::npos) {
        d.name = std::string(strings::trim(item.substr(0, paren)));
        d.is_array = true;
        const std::size_t close = item.find(')', paren);
        if (close == std::string::npos) {
          throw ParseError("fortran: unterminated array declaration");
        }
        d.size = std::stoll(item.substr(paren + 1, close - paren - 1));
        if (eq != std::string::npos && eq > close) {
          d.init = std::stoll(item.substr(eq + 1));  // broadcast init
        }
      } else if (eq != std::string::npos) {
        d.name = std::string(strings::trim(item.substr(0, eq)));
        d.init = std::stoll(item.substr(eq + 1));
      } else {
        d.name = item;
      }
      p.decls.push_back(std::move(d));
    }
  }

  Clauses parse_clauses(const std::string& directive) {
    Clauses c;
    c.simd = directive.find(" simd") != std::string::npos;
    c.target = directive.find(" target") != std::string::npos;
    const auto scan = [&](const std::string& key)
        -> std::vector<std::string> {
      std::vector<std::string> out;
      std::size_t pos = 0;
      while ((pos = directive.find(key + "(", pos)) != std::string::npos) {
        if (pos > 0 && (std::isalnum(static_cast<unsigned char>(
                            directive[pos - 1])) ||
                        directive[pos - 1] == '_')) {
          pos += key.size();
          continue;
        }
        const std::size_t open = pos + key.size();
        const std::size_t close = directive.find(')', open);
        if (close == std::string::npos) break;
        for (const std::string& item : strings::split(
                 directive.substr(open + 1, close - open - 1), ',')) {
          out.push_back(std::string(strings::trim(item)));
        }
        pos = close;
      }
      return out;
    };
    c.priv = scan("private");
    c.firstprivate = scan("firstprivate");
    c.shared = scan("shared");
    for (const std::string& r : scan("reduction")) {
      const auto parts = strings::split(r, ':');
      if (parts.size() == 2) {
        Reduction red;
        red.op = std::string(strings::trim(parts[0]))[0];
        red.var = std::string(strings::trim(parts[1]));
        c.reductions.push_back(red);
      }
    }
    for (const std::string& n : scan("num_threads")) {
      c.num_threads = static_cast<std::size_t>(std::stoll(n));
    }
    return c;
  }

  Stmt parse_stmt() {
    if (lines_[pos_].is_directive) return parse_directive();
    const std::string& t = current();
    if (strings::starts_with(t, "do ")) return parse_do(Clauses{}, false);
    if (strings::starts_with(t, "if ")) return parse_if();
    // assignment: lhs = rhs (split at the first top-level '=')
    return parse_assign_line();
  }

  Stmt parse_assign_line() {
    const std::string& t = current();
    const std::size_t eq = find_assign_eq(t);
    if (eq == std::string::npos) fail("expected assignment");
    ExprPtr target = parse_expr_text(
        std::string(strings::trim(t.substr(0, eq))));
    if (target->kind != Expr::Kind::ScalarRef &&
        target->kind != Expr::Kind::ArrayRef) {
      fail("assignment target must be a variable or array element");
    }
    ExprPtr value = parse_expr_text(
        std::string(strings::trim(t.substr(eq + 1))));
    ++pos_;
    return assign(std::move(target), std::move(value));
  }

  /// Index of the assignment '=' (not part of == or /=), outside parens.
  static std::size_t find_assign_eq(const std::string& t) {
    int depth = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const char c = t[i];
      if (c == '(') ++depth;
      else if (c == ')') --depth;
      else if (c == '=' && depth == 0) {
        const char prev = i > 0 ? t[i - 1] : '\0';
        const char next = i + 1 < t.size() ? t[i + 1] : '\0';
        if (prev != '=' && prev != '/' && prev != '<' && prev != '>' &&
            next != '=') {
          return i;
        }
      }
    }
    return std::string::npos;
  }

  Stmt parse_do(Clauses clauses, bool parallel) {
    const std::string header = current();
    ++pos_;
    // `do v = <lo-expr> + 1, <hi-expr>`
    const std::size_t eq = header.find('=');
    if (eq == std::string::npos) fail("malformed do header");
    const std::string var(strings::trim(header.substr(3, eq - 3)));
    const std::size_t comma = find_top_level_comma(header, eq + 1);
    if (comma == std::string::npos) fail("do header missing bound comma");
    ExprPtr lo_plus_one = parse_expr_text(
        std::string(strings::trim(header.substr(eq + 1, comma - eq - 1))));
    ExprPtr hi = parse_expr_text(
        std::string(strings::trim(header.substr(comma + 1))));
    // Undo the renderer's +1 shift to restore the half-open C bound.
    ExprPtr lo;
    if (lo_plus_one->kind == Expr::Kind::BinOp && lo_plus_one->op == '+' &&
        lo_plus_one->rhs->kind == Expr::Kind::IntLit &&
        lo_plus_one->rhs->value == 1) {
      lo = std::move(lo_plus_one->lhs);
    } else {
      lo = bin_op('-', std::move(lo_plus_one), int_lit(1));
    }

    std::vector<Stmt> body;
    while (current() != "end do") body.push_back(parse_stmt());
    ++pos_;  // end do
    if (parallel) {
      // consume the matching `!$omp end ...` sentinel
      if (pos_ < lines_.size() && lines_[pos_].is_directive &&
          lines_[pos_].text.find("end") != std::string::npos) {
        ++pos_;
      }
      return parallel_for(var, std::move(lo), std::move(hi),
                          std::move(body), std::move(clauses));
    }
    return seq_for(var, std::move(lo), std::move(hi), std::move(body));
  }

  static std::size_t find_top_level_comma(const std::string& t,
                                          std::size_t from) {
    int depth = 0;
    for (std::size_t i = from; i < t.size(); ++i) {
      if (t[i] == '(') ++depth;
      else if (t[i] == ')') --depth;
      else if (t[i] == ',' && depth == 0) return i;
    }
    return std::string::npos;
  }

  Stmt parse_if() {
    const std::string header = current();
    ++pos_;
    // `if <expr> then`
    std::string cond_text(strings::trim(header.substr(2)));
    if (!strings::ends_with(cond_text, "then")) {
      fail("expected block if ... then");
    }
    cond_text = std::string(
        strings::trim(cond_text.substr(0, cond_text.size() - 4)));
    ExprPtr cond = parse_expr_text(cond_text);
    std::vector<Stmt> body;
    while (current() != "end if") body.push_back(parse_stmt());
    ++pos_;
    return if_stmt(std::move(cond), std::move(body));
  }

  Stmt parse_directive() {
    const std::string directive = current();
    ++pos_;
    const auto contains = [&](const char* what) {
      return directive.find(what) != std::string::npos;
    };
    if (contains("end")) fail("unexpected end sentinel");
    if (contains("critical")) {
      std::vector<Stmt> body;
      while (current() != "!$omp end critical") body.push_back(parse_stmt());
      ++pos_;
      return critical(std::move(body));
    }
    if (contains("atomic")) {
      Stmt a = parse_assign_line();
      a.kind = Stmt::Kind::Atomic;
      return a;
    }
    if (contains("barrier")) return barrier();
    if (contains("master")) {
      std::vector<Stmt> body;
      while (current() != "!$omp end master") body.push_back(parse_stmt());
      ++pos_;
      return master(std::move(body));
    }
    if (contains("single")) {
      std::vector<Stmt> body;
      while (current() != "!$omp end single") body.push_back(parse_stmt());
      ++pos_;
      return single(std::move(body));
    }
    Clauses clauses = parse_clauses(directive);
    if (contains(" do") || contains("distribute")) {
      return parse_do(std::move(clauses), /*parallel=*/true);
    }
    if (contains("parallel")) {
      std::vector<Stmt> body;
      while (current() != "!$omp end parallel") body.push_back(parse_stmt());
      ++pos_;
      return parallel_region(std::move(body), std::move(clauses));
    }
    fail("unsupported directive");
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse_f(std::string_view source) {
  FortranParser parser(logical_lines(source));
  return parser.parse();
}

Program parse_any(std::string_view source) {
  if (source.find("!$omp") != std::string_view::npos ||
      source.find("end do") != std::string_view::npos ||
      source.find("program ") != std::string_view::npos) {
    return parse_f(source);
  }
  return parse_c(source);
}

}  // namespace hpcgpt::minilang
