#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hpcgpt::text {

using TokenId = std::int32_t;

/// Byte-level BPE tokenizer, trainable from a corpus.
///
/// The base alphabet is the 256 byte values plus a handful of special
/// tokens, so any input round-trips losslessly. Merges are learned greedily
/// by pair frequency, exactly like the original BPE procedure used by the
/// GPT/LLaMA families the paper builds on. The trained vocabulary is shared
/// by every model configuration in `hpcgpt::core` so that fine-tuned and
/// baseline models see identical token streams.
class BpeTokenizer {
 public:
  /// Special tokens occupy the ids immediately after the byte alphabet.
  static constexpr TokenId kPad = 256;
  static constexpr TokenId kBos = 257;
  static constexpr TokenId kEos = 258;
  static constexpr TokenId kSep = 259;  ///< instruction/answer separator
  static constexpr TokenId kFirstMerge = 260;

  BpeTokenizer();

  /// Learns merges from `corpus` until the vocabulary reaches `vocab_size`
  /// (or no pair occurs at least `min_pair_count` times). `vocab_size` must
  /// be >= kFirstMerge.
  void train(const std::vector<std::string>& corpus, std::size_t vocab_size,
             std::size_t min_pair_count = 2);

  /// Encodes UTF-8/byte text into token ids (no BOS/EOS added).
  std::vector<TokenId> encode(std::string_view text) const;

  /// Decodes ids back to bytes; special tokens decode to empty.
  std::string decode(const std::vector<TokenId>& ids) const;

  /// Total vocabulary size (bytes + specials + merges).
  std::size_t vocab_size() const { return kFirstMerge + merges_.size(); }

  /// Number of learned merges.
  std::size_t merge_count() const { return merges_.size(); }

  /// Human-readable piece for a token id (bytes rendered verbatim).
  std::string piece(TokenId id) const;

  /// Serialization for checkpointing (merge list as text, one per line).
  std::string save() const;
  static BpeTokenizer load(std::string_view serialized);

 private:
  struct Merge {
    TokenId left;
    TokenId right;
  };

  struct PairHash {
    std::size_t operator()(const std::pair<TokenId, TokenId>& p) const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.first))
           << 32) |
          static_cast<std::uint32_t>(p.second));
    }
  };

  void rebuild_merge_index();

  std::vector<Merge> merges_;
  std::unordered_map<std::pair<TokenId, TokenId>, TokenId, PairHash>
      merge_index_;
};

}  // namespace hpcgpt::text
