#pragma once

#include <string_view>

namespace hpcgpt::text {

/// Word-level similarity metrics used by the filtering/pruning stage of the
/// instruction pipeline (paper §3.2: "do not generate the same or similar
/// questions as generated before") to detect near-duplicate instructions.
///
/// All metrics operate on lowercased, punctuation-stripped word sequences
/// and return a value in [0, 1], where 1 means identical.

/// ROUGE-L F1: longest-common-subsequence based similarity, the standard
/// instruction-dedup metric (Self-Instruct uses ROUGE-L > 0.7 as the cut).
double rouge_l(std::string_view a, std::string_view b);

/// Jaccard similarity of word unigram sets.
double jaccard_words(std::string_view a, std::string_view b);

/// Dice coefficient over word bigram multisets.
double bigram_dice(std::string_view a, std::string_view b);

}  // namespace hpcgpt::text
