#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hpcgpt::text {

/// Options controlling how long documents are split.
struct ChunkOptions {
  /// Maximum chunk length in words.
  std::size_t max_words = 120;
  /// Words of overlap carried from the end of one chunk into the next, so
  /// facts straddling a boundary stay retrievable.
  std::size_t overlap_words = 20;
  /// Prefer to break at line boundaries when one exists inside the window.
  bool respect_lines = true;
};

/// Splits `document` into overlapping chunks.
///
/// This implements the paper's §5 proposal for code snippets exceeding the
/// LLM context limit ("break down large code snippets into smaller,
/// manageable segments ... analyze each segment individually and then
/// combine the results") and the LangChain-style chunking feeding the
/// vector store in `hpcgpt::retrieval`.
std::vector<std::string> chunk_document(std::string_view document,
                                        const ChunkOptions& options = {});

/// Splits source code into chunks of at most `max_lines` lines with
/// `overlap_lines` lines of overlap; line-oriented variant for programs.
std::vector<std::string> chunk_code(std::string_view code,
                                    std::size_t max_lines,
                                    std::size_t overlap_lines = 2);

}  // namespace hpcgpt::text
