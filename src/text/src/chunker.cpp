#include "hpcgpt/text/chunker.hpp"

#include <algorithm>

#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/strings.hpp"

namespace hpcgpt::text {

std::vector<std::string> chunk_document(std::string_view document,
                                        const ChunkOptions& options) {
  require(options.max_words > 0, "chunk_document: max_words must be > 0");
  require(options.overlap_words < options.max_words,
          "chunk_document: overlap must be smaller than chunk size");

  const std::vector<std::string> words =
      strings::split_whitespace(document);
  std::vector<std::string> chunks;
  if (words.empty()) return chunks;

  std::size_t begin = 0;
  while (begin < words.size()) {
    const std::size_t end =
        std::min(words.size(), begin + options.max_words);
    std::vector<std::string> piece(words.begin() + static_cast<std::ptrdiff_t>(begin),
                                   words.begin() + static_cast<std::ptrdiff_t>(end));
    chunks.push_back(strings::join(piece, " "));
    if (end == words.size()) break;
    begin = end - options.overlap_words;
  }
  return chunks;
}

std::vector<std::string> chunk_code(std::string_view code,
                                    std::size_t max_lines,
                                    std::size_t overlap_lines) {
  require(max_lines > 0, "chunk_code: max_lines must be > 0");
  require(overlap_lines < max_lines,
          "chunk_code: overlap must be smaller than chunk size");

  const std::vector<std::string> lines = strings::split(code, '\n');
  std::vector<std::string> chunks;
  if (lines.empty()) return chunks;

  std::size_t begin = 0;
  while (begin < lines.size()) {
    const std::size_t end = std::min(lines.size(), begin + max_lines);
    std::vector<std::string> piece(lines.begin() + static_cast<std::ptrdiff_t>(begin),
                                   lines.begin() + static_cast<std::ptrdiff_t>(end));
    chunks.push_back(strings::join(piece, "\n"));
    if (end == lines.size()) break;
    begin = end - overlap_lines;
  }
  return chunks;
}

}  // namespace hpcgpt::text
