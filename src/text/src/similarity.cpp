#include "hpcgpt/text/similarity.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "hpcgpt/support/strings.hpp"

namespace hpcgpt::text {

namespace {

std::size_t lcs_length(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0;
  // Rolling single-row DP: O(|a|*|b|) time, O(|b|) space.
  std::vector<std::size_t> row(b.size() + 1, 0);
  for (const std::string& wa : a) {
    std::size_t diagonal = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::size_t above = row[j + 1];
      row[j + 1] = (wa == b[j]) ? diagonal + 1 : std::max(above, row[j]);
      diagonal = above;
    }
  }
  return row[b.size()];
}

}  // namespace

double rouge_l(std::string_view a, std::string_view b) {
  const auto wa = strings::normalized_words(a);
  const auto wb = strings::normalized_words(b);
  if (wa.empty() && wb.empty()) return 1.0;
  if (wa.empty() || wb.empty()) return 0.0;
  const double lcs = static_cast<double>(lcs_length(wa, wb));
  if (lcs == 0.0) return 0.0;
  const double precision = lcs / static_cast<double>(wb.size());
  const double recall = lcs / static_cast<double>(wa.size());
  return 2.0 * precision * recall / (precision + recall);
}

double jaccard_words(std::string_view a, std::string_view b) {
  const auto wa = strings::normalized_words(a);
  const auto wb = strings::normalized_words(b);
  const std::set<std::string> sa(wa.begin(), wa.end());
  const std::set<std::string> sb(wb.begin(), wb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  std::size_t intersection = 0;
  for (const auto& w : sa) intersection += sb.count(w);
  const std::size_t unions = sa.size() + sb.size() - intersection;
  return unions == 0 ? 0.0
                     : static_cast<double>(intersection) /
                           static_cast<double>(unions);
}

double bigram_dice(std::string_view a, std::string_view b) {
  const auto wa = strings::normalized_words(a);
  const auto wb = strings::normalized_words(b);
  const auto bigrams = [](const std::vector<std::string>& words) {
    std::map<std::pair<std::string, std::string>, std::size_t> out;
    for (std::size_t i = 0; i + 1 < words.size(); ++i) {
      ++out[{words[i], words[i + 1]}];
    }
    return out;
  };
  const auto ba = bigrams(wa);
  const auto bb = bigrams(wb);
  if (ba.empty() && bb.empty()) return 1.0;
  std::size_t total_a = 0;
  std::size_t total_b = 0;
  for (const auto& [k, v] : ba) total_a += v;
  for (const auto& [k, v] : bb) total_b += v;
  std::size_t overlap = 0;
  for (const auto& [k, v] : ba) {
    const auto it = bb.find(k);
    if (it != bb.end()) overlap += std::min(v, it->second);
  }
  const std::size_t denom = total_a + total_b;
  return denom == 0 ? 0.0
                    : 2.0 * static_cast<double>(overlap) /
                          static_cast<double>(denom);
}

}  // namespace hpcgpt::text
