#include "hpcgpt/text/tokenizer.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::text {

BpeTokenizer::BpeTokenizer() = default;

void BpeTokenizer::train(const std::vector<std::string>& corpus,
                         std::size_t vocab_size,
                         std::size_t min_pair_count) {
  require(vocab_size >= static_cast<std::size_t>(kFirstMerge),
          "BpeTokenizer::train: vocab_size below base alphabet");
  merges_.clear();
  merge_index_.clear();

  // Working token sequences, one per corpus document.
  std::vector<std::vector<TokenId>> docs;
  docs.reserve(corpus.size());
  for (const std::string& doc : corpus) {
    std::vector<TokenId> ids;
    ids.reserve(doc.size());
    for (const char c : doc) {
      ids.push_back(static_cast<TokenId>(static_cast<unsigned char>(c)));
    }
    docs.push_back(std::move(ids));
  }

  while (this->vocab_size() < vocab_size) {
    // Count adjacent pairs across all documents.
    std::unordered_map<std::pair<TokenId, TokenId>, std::size_t, PairHash>
        counts;
    for (const auto& ids : docs) {
      for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
        ++counts[{ids[i], ids[i + 1]}];
      }
    }
    if (counts.empty()) break;

    // Deterministic argmax: highest count, ties broken by smallest pair.
    std::pair<TokenId, TokenId> best{0, 0};
    std::size_t best_count = 0;
    for (const auto& [pair, count] : counts) {
      if (count > best_count ||
          (count == best_count && pair < best)) {
        best = pair;
        best_count = count;
      }
    }
    if (best_count < min_pair_count) break;

    const TokenId new_id =
        static_cast<TokenId>(kFirstMerge + merges_.size());
    merges_.push_back({best.first, best.second});
    merge_index_[best] = new_id;

    // Apply the merge in place in every document.
    for (auto& ids : docs) {
      std::size_t write = 0;
      for (std::size_t read = 0; read < ids.size(); ++read) {
        if (read + 1 < ids.size() && ids[read] == best.first &&
            ids[read + 1] == best.second) {
          ids[write++] = new_id;
          ++read;
        } else {
          ids[write++] = ids[read];
        }
      }
      ids.resize(write);
    }
  }
}

std::vector<TokenId> BpeTokenizer::encode(std::string_view text) const {
  std::vector<TokenId> ids;
  ids.reserve(text.size());
  for (const char c : text) {
    ids.push_back(static_cast<TokenId>(static_cast<unsigned char>(c)));
  }
  if (merge_index_.empty()) return ids;

  // Repeatedly apply the earliest-learned applicable merge. Applying merges
  // in rank order reproduces the canonical BPE segmentation.
  for (;;) {
    TokenId best_rank = std::numeric_limits<TokenId>::max();
    std::size_t best_pos = ids.size();
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      const auto it = merge_index_.find({ids[i], ids[i + 1]});
      if (it != merge_index_.end() && it->second < best_rank) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_pos == ids.size()) break;
    ids[best_pos] = best_rank;
    ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(best_pos) + 1);
  }
  return ids;
}

std::string BpeTokenizer::decode(const std::vector<TokenId>& ids) const {
  std::string out;
  for (const TokenId id : ids) out += piece(id);
  return out;
}

std::string BpeTokenizer::piece(TokenId id) const {
  if (id >= 0 && id < 256) {
    return std::string(1, static_cast<char>(static_cast<unsigned char>(id)));
  }
  if (id >= kPad && id < kFirstMerge) return {};
  const std::size_t index = static_cast<std::size_t>(id - kFirstMerge);
  require(index < merges_.size(), "BpeTokenizer::piece: id out of range");
  return piece(merges_[index].left) + piece(merges_[index].right);
}

std::string BpeTokenizer::save() const {
  std::ostringstream out;
  out << "bpe-v1 " << merges_.size() << "\n";
  for (const Merge& m : merges_) out << m.left << " " << m.right << "\n";
  return out.str();
}

BpeTokenizer BpeTokenizer::load(std::string_view serialized) {
  std::istringstream in{std::string(serialized)};
  std::string magic;
  std::size_t count = 0;
  in >> magic >> count;
  if (magic != "bpe-v1") throw ParseError("BpeTokenizer::load: bad magic");
  BpeTokenizer tok;
  tok.merges_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Merge m{};
    in >> m.left >> m.right;
    if (!in) throw ParseError("BpeTokenizer::load: truncated merge list");
    tok.merges_.push_back(m);
  }
  tok.rebuild_merge_index();
  return tok;
}

void BpeTokenizer::rebuild_merge_index() {
  merge_index_.clear();
  for (std::size_t i = 0; i < merges_.size(); ++i) {
    merge_index_[{merges_[i].left, merges_[i].right}] =
        static_cast<TokenId>(kFirstMerge + i);
  }
}

}  // namespace hpcgpt::text
