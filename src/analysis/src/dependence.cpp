#include "hpcgpt/analysis/dependence.hpp"

#include <cstdlib>
#include <optional>
#include <sstream>

namespace hpcgpt::analysis {

using minilang::Expr;
using minilang::Stmt;

namespace {

void emit(std::vector<Diagnostic>& out, Severity severity,
          const std::string& var, std::vector<int> stmts, std::string msg) {
  Diagnostic d;
  d.pass = PassId::Dependence;
  d.severity = severity;
  d.variable = var;
  d.stmts = std::move(stmts);
  d.message = std::move(msg);
  out.push_back(std::move(d));
}

/// Constant-folds a bound expression (affine with no loop variable =
/// literals and their arithmetic).
std::optional<std::int64_t> const_value(const Expr* e) {
  if (e == nullptr) return std::nullopt;
  const AffineIndex a = affine_in(*e, "");
  if (a.affine && a.scale == 0) return a.offset;
  return std::nullopt;
}

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

void run_dependence_pass(const Stmt& loop, const LoopAccesses& accesses,
                         const StmtIndex& /*index*/,
                         const DependenceOptions& options,
                         std::vector<Diagnostic>& out) {
  // Constant trip count, when the bounds fold (the range test needs it).
  std::optional<std::int64_t> trip;
  std::optional<std::int64_t> lo;
  if (options.range_test) {
    lo = const_value(loop.lo.get());
    const auto hi = const_value(loop.hi.get());
    if (lo && hi) trip = *hi - *lo > 0 ? *hi - *lo : 0;
  }

  for (const auto& [name, accs] : accesses.arrays) {
    bool all_analyzable = true;
    std::vector<int> non_affine_stmts;
    for (const ArrayAccess& a : accs) {
      if (!a.analyzable) {
        all_analyzable = false;
        non_affine_stmts.push_back(a.stmt);
      }
    }
    if (!all_analyzable) {
      // Silent on the verdict level: the original tool's main
      // false-negative source. The note keeps the gap visible.
      if (options.notes) {
        emit(out, Severity::Note, name, non_affine_stmts,
             "subscript is not affine in the loop variable — dependence "
             "test skipped");
      }
      continue;
    }

    // Pair loop identical to the original detector; one error per array
    // is enough (the first matches the original verdict exactly).
    bool done = false;
    for (std::size_t i = 0; i < accs.size() && !done; ++i) {
      if (!accs[i].is_write) continue;
      for (std::size_t j = 0; j < accs.size() && !done; ++j) {
        const AffineIndex& w = accs[i].index;
        const AffineIndex& o = accs[j].index;
        const std::vector<int> pair = {accs[i].stmt, accs[j].stmt};
        if (i == j) {
          // A write conflicts with itself across iterations only when the
          // subscript is loop-invariant (every iteration hits the same
          // element) — and only if the loop actually has two iterations.
          if (w.scale == 0) {
            if (trip && *trip <= 1) {
              if (options.notes) {
                emit(out, Severity::Note, name, pair,
                     "loop-invariant write refuted by the range test: the "
                     "loop runs at most one iteration");
              }
              continue;
            }
            emit(out, Severity::Error, name, pair,
                 "loop-invariant subscript written by all iterations");
            done = true;
          }
          continue;
        }
        if (w.scale == o.scale) {
          const std::int64_t diff = o.offset - w.offset;
          if (w.scale == 0) {
            // ZIV: two loop-invariant subscripts conflict iff equal
            // (every iteration touches that one element).
            if (diff == 0) {
              if (trip && *trip <= 1) {
                if (options.notes) {
                  emit(out, Severity::Note, name, pair,
                       "loop-invariant conflict refuted by the range test: "
                       "the loop runs at most one iteration");
                }
                continue;
              }
              emit(out, Severity::Error, name, pair,
                   "loop-invariant subscript conflict");
              done = true;
            }
            continue;
          }
          // Strong SIV test: a dependence exists iff the offset difference
          // is a multiple of the common stride. Without the range test the
          // distance is NOT checked against the trip count — the original
          // tool's false-positive source on disjoint-halves kernels
          // (write a[i], read a[i + n/2]).
          if (diff != 0 && diff % w.scale == 0) {
            const std::int64_t distance = diff / w.scale;
            if (trip && (distance >= *trip || distance <= -*trip)) {
              if (options.notes) {
                std::ostringstream msg;
                msg << "dependence distance " << distance
                    << " exceeds the loop trip count " << *trip
                    << " — refuted by the range test (the accesses touch "
                       "disjoint index ranges)";
                emit(out, Severity::Note, name, pair, msg.str());
              }
              continue;
            }
            emit(out, Severity::Error, name, pair,
                 "loop-carried dependence (SIV test)");
            done = true;
          }
          continue;
        }
        // Different strides (MIV). The original tool reports these
        // conservatively; the GCD test refutes pairs whose Diophantine
        // system has no integer solution, and when one subscript is
        // loop-invariant the solution can be checked against the bounds.
        const std::int64_t diff = o.offset - w.offset;
        if (options.gcd_test) {
          const std::int64_t g = gcd64(w.scale, o.scale);
          if (g != 0 && diff % g != 0) {
            if (options.notes) {
              emit(out, Severity::Note, name, pair,
                   "offset difference is not divisible by gcd(strides) — "
                   "refuted by the GCD test");
            }
            continue;
          }
          const bool w_fixed = w.scale == 0;
          const bool o_fixed = o.scale == 0;
          if (w_fixed != o_fixed && lo && trip) {
            const AffineIndex& fixed = w_fixed ? w : o;
            const AffineIndex& varying = w_fixed ? o : w;
            // The varying access hits the fixed element at exactly one
            // iteration; refute when that iteration is outside [lo, hi).
            if ((fixed.offset - varying.offset) % varying.scale == 0) {
              const std::int64_t at =
                  (fixed.offset - varying.offset) / varying.scale;
              if (at < *lo || at >= *lo + *trip) {
                if (options.notes) {
                  emit(out, Severity::Note, name, pair,
                       "conflicting iteration lies outside the loop bounds "
                       "— refuted by the range test");
                }
                continue;
              }
            }
          }
        }
        emit(out, Severity::Error, name, pair,
             "coupled subscripts with unequal strides (MIV)");
        done = true;
      }
    }
  }
}

}  // namespace hpcgpt::analysis
