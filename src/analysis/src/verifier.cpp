#include "hpcgpt/analysis/verifier.hpp"

#include "hpcgpt/analysis/access.hpp"
#include "hpcgpt/analysis/stmt_index.hpp"

namespace hpcgpt::analysis {

using minilang::Program;
using minilang::Stmt;

VerifierOptions VerifierOptions::llov_compat() {
  VerifierOptions o;
  o.verify_regions = false;
  o.deep_traversal = false;
  o.exhaustive = false;
  o.scoping.extended_lints = false;
  o.dependence.gcd_test = false;
  o.dependence.range_test = false;
  o.dependence.notes = false;
  return o;
}

namespace {

/// Appends `fresh` to `out`; in non-exhaustive mode only the first error
/// survives (the original detector reported one race per loop and the
/// scoping pass pre-empted the dependence pass).
void merge(std::vector<Diagnostic>& out, std::vector<Diagnostic>&& fresh,
           bool exhaustive) {
  if (exhaustive) {
    for (Diagnostic& d : fresh) out.push_back(std::move(d));
    return;
  }
  for (Diagnostic& d : fresh) {
    if (d.severity != Severity::Error) continue;
    out.push_back(std::move(d));
    return;
  }
}

class Verifier {
 public:
  Verifier(const Program& program, const VerifierOptions& options)
      : program_(program), options_(options) {}

  Report run() {
    const StmtIndex index = StmtIndex::build(program_);
    report_.statements = index.size();

    if (options_.verify_regions) {
      const MhpInfo mhp = compute_mhp(program_, index);
      run_mhp_pass(program_, index, mhp, report_.diagnostics);
    }

    for (const Stmt& s : program_.body) {
      visit(s, index);
      // The original detector stopped after the first toplevel statement
      // that yielded a race.
      if (!options_.exhaustive && report_.has_errors()) break;
    }
    // Identical findings (same pass + statement span + variable) reported
    // through more than one access pair collapse to their first
    // occurrence; verdicts are unaffected (see deduplicate()).
    deduplicate(report_.diagnostics);
    return std::move(report_);
  }

 private:
  void visit(const Stmt& s, const StmtIndex& index) {
    switch (s.kind) {
      case Stmt::Kind::ParallelFor:
        report_.saw_parallel_loop = true;
        analyze_loop(s, index);
        return;
      case Stmt::Kind::ParallelRegion:
        report_.saw_parallel_region = true;
        if (options_.deep_traversal) descend(s, index);
        return;
      case Stmt::Kind::SeqFor:
      case Stmt::Kind::If:
        descend(s, index);
        return;
      default:
        if (options_.deep_traversal) descend(s, index);
        return;
    }
  }

  void descend(const Stmt& s, const StmtIndex& index) {
    for (const Stmt& inner : s.body) visit(inner, index);
  }

  void analyze_loop(const Stmt& loop, const StmtIndex& index) {
    const LoopAccesses accesses = collect_loop_accesses(loop, index);

    std::vector<Diagnostic> scoping;
    run_scoping_pass(loop, accesses, index, options_.scoping, scoping);
    const bool scoping_error = [&] {
      for (const Diagnostic& d : scoping) {
        if (d.severity == Severity::Error) return true;
      }
      return false;
    }();
    merge(report_.diagnostics, std::move(scoping), options_.exhaustive);

    // The original detector never reached the subscript tests once a
    // scalar rule fired; keep that pre-emption in compat mode.
    if (!options_.exhaustive && scoping_error) return;

    std::vector<Diagnostic> dependence;
    run_dependence_pass(loop, accesses, index, options_.dependence,
                        dependence);
    merge(report_.diagnostics, std::move(dependence), options_.exhaustive);
  }

  const Program& program_;
  const VerifierOptions& options_;
  Report report_;
};

}  // namespace

Report verify(const Program& program, const VerifierOptions& options) {
  return Verifier(program, options).run();
}

std::string rationale_text(const Report& report) {
  if (const Diagnostic* e = report.first_error()) {
    return "Static analysis flags '" + e->variable + "' (" +
           pass_name(e->pass) + " pass): " + e->message + ".";
  }
  std::size_t warnings = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == Severity::Warning) ++warnings;
  }
  if (warnings > 0) {
    return "Static analysis found no provable conflict, though " +
           std::to_string(warnings) +
           (warnings == 1 ? " access could not be proven disjoint."
                          : " accesses could not be proven disjoint.");
  }
  return "Static analysis found no conflicting accesses across the "
         "verified parallel constructs.";
}

}  // namespace hpcgpt::analysis
