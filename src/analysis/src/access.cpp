#include "hpcgpt/analysis/access.hpp"

#include <set>

namespace hpcgpt::analysis {

using minilang::Expr;
using minilang::Stmt;

namespace {

bool mentions(const Expr& e, const std::string& name) {
  switch (e.kind) {
    case Expr::Kind::ScalarRef:
      return e.name == name;
    case Expr::Kind::ArrayRef:
      return e.name == name || mentions(*e.index, name);
    case Expr::Kind::BinOp:
      return mentions(*e.lhs, name) || mentions(*e.rhs, name);
    default:
      return false;
  }
}

/// The collection walk. Traversal order, protection tracking, and the
/// verdict-bearing ScalarUse flags replicate the original single-pass
/// detector exactly; the collector only adds bookkeeping (statement ids,
/// access order, clause classification) on top.
class Collector {
 public:
  Collector(const Stmt& loop, const StmtIndex& index)
      : loop_(loop), index_(index) {
    local_scalars_.insert(loop.loop_var);
  }

  LoopAccesses run() {
    collect(loop_.body, /*in_prot=*/false, /*in_master=*/false);
    return std::move(result_);
  }

 private:
  /// Routes a scalar by data-sharing class; nullptr = thread-local
  /// (loop variables), which never participates in any check.
  ScalarUse* slot(const std::string& name) {
    if (local_scalars_.count(name) > 0) return nullptr;
    if (loop_.clauses.is_reduction(name)) return &result_.reductions[name];
    if (loop_.clauses.is_private(name)) return &result_.privatized[name];
    return &result_.shared[name];
  }

  void collect(const std::vector<Stmt>& body, bool in_prot, bool in_master) {
    for (const Stmt& s : body) {
      const int id = index_.id_of(&s);
      switch (s.kind) {
        case Stmt::Kind::Assign:
          if (s.target->kind == Expr::Kind::ScalarRef &&
              !mentions(*s.value, s.target->name)) {
            if (ScalarUse* use = slot(s.target->name)) {
              use->non_accumulating_write = true;
            }
          }
          collect_access(*s.target, /*is_write=*/true, in_prot, in_master, id);
          collect_access(*s.value, /*is_write=*/false, in_prot, in_master, id);
          break;
        case Stmt::Kind::Atomic:
          collect_access(*s.target, true, /*in_prot=*/true, in_master, id);
          collect_access(*s.value, false, /*in_prot=*/true, in_master, id);
          break;
        case Stmt::Kind::Critical:
          collect(s.body, /*in_prot=*/true, in_master);
          break;
        case Stmt::Kind::Master:
        case Stmt::Kind::Single:
          collect(s.body, in_prot, /*in_master=*/true);
          break;
        case Stmt::Kind::If:
          // Static analysis explores both branches: may-execute accesses
          // participate in dependence testing.
          collect_access(*s.cond, false, in_prot, in_master, id);
          collect(s.body, in_prot, in_master);
          break;
        case Stmt::Kind::SeqFor: {
          const bool added = local_scalars_.insert(s.loop_var).second;
          collect(s.body, in_prot, in_master);
          if (added) local_scalars_.erase(s.loop_var);
          break;
        }
        default:
          break;
      }
    }
  }

  void collect_access(const Expr& e, bool is_write, bool in_prot,
                      bool in_master, int stmt_id) {
    switch (e.kind) {
      case Expr::Kind::ScalarRef: {
        ScalarUse* use = slot(e.name);
        if (!use) return;
        const int ord = order_++;
        if (is_write) {
          if (use->first_write_order == -1) use->first_write_order = ord;
        } else if (use->first_read_order == -1) {
          use->first_read_order = ord;
        }
        if (use->stmts.empty() || use->stmts.back() != stmt_id) {
          use->stmts.push_back(stmt_id);
        }
        if (is_write) {
          if (in_master) {
            use->master_write = true;
          } else if (in_prot) {
            use->prot_write = true;
          } else {
            use->unprot_write = true;
          }
        } else {
          if (!in_prot && !in_master) use->unprot_read = true;
          if (!in_master) use->any_other_thread_access = true;
        }
        if (is_write && !in_master) use->any_other_thread_access = true;
        return;
      }
      case Expr::Kind::ArrayRef: {
        ArrayAccess a;
        a.is_write = is_write;
        a.index = affine_in(*e.index, loop_.loop_var);
        a.analyzable = a.index.affine;
        a.stmt = stmt_id;
        // Accesses under critical/atomic are pairwise ordered and drop
        // out of the dependence test.
        if (!in_prot && !in_master) result_.arrays[e.name].push_back(a);
        collect_access(*e.index, false, in_prot, in_master, stmt_id);
        return;
      }
      case Expr::Kind::BinOp:
        collect_access(*e.lhs, false, in_prot, in_master, stmt_id);
        collect_access(*e.rhs, false, in_prot, in_master, stmt_id);
        return;
      default:
        return;
    }
  }

  const Stmt& loop_;
  const StmtIndex& index_;
  std::set<std::string> local_scalars_;
  LoopAccesses result_;
  int order_ = 0;
};

}  // namespace

LoopAccesses collect_loop_accesses(const Stmt& loop, const StmtIndex& index) {
  return Collector(loop, index).run();
}

}  // namespace hpcgpt::analysis
