#include "hpcgpt/analysis/service.hpp"

#include <utility>

#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/minilang/fingerprint.hpp"
#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/minilang/render.hpp"
#include "hpcgpt/obs/trace.hpp"
#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/hash.hpp"
#include "hpcgpt/support/timer.hpp"

namespace hpcgpt::analysis {

namespace {

/// What makes each DataRaceBench category (not) race — phrased with the
/// verifier's own vocabulary (shared writes, clauses, barriers, loop-
/// carried dependences) so TF-IDF retrieval lands rationales on the
/// right catalogue rows.
std::string category_blurb(drb::Category c) {
  using drb::Category;
  switch (c) {
    case Category::UnresolvableDependences:
      return "a parallel loop carries a dependence between iterations "
             "(a[i] written from a[i-1] or a coupled subscript no test can "
             "refute), so concurrent iterations conflict on the array";
    case Category::MissingDataSharingClauses:
      return "a scalar shared by default is written by every thread "
             "without a private, firstprivate or reduction clause, so the "
             "writes race";
    case Category::MissingSynchronization:
      return "threads in a parallel region access shared data without a "
             "barrier, critical section or atomic between the conflicting "
             "phases";
    case Category::SimdDataRaces:
      return "an omp simd loop carries a dependence between vector lanes, "
             "so simultaneous lanes conflict on the same element";
    case Category::AcceleratorDataRaces:
      return "an omp target teams loop writes shared data concurrently on "
             "the device without scoping or synchronization";
    case Category::UndefinedBehavior:
      return "the outcome depends on input or thread count (a conditional "
             "write guards the conflict), so the race is input-dependent "
             "undefined behavior";
    case Category::NumericalKernelDataRaces:
      return "a numerical kernel accumulates into a shared scalar or "
             "overlapping array cells without a reduction clause";
    case Category::SingleThreadExecution:
      return "the conflicting statements run single-threaded (master or "
             "single construct, or a sequential loop), so no two threads "
             "touch the data concurrently";
    case Category::UseOfDataSharingClauses:
      return "private, firstprivate and reduction clauses give every "
             "thread its own copy of the written scalars, so no shared "
             "write remains";
    case Category::UseOfSynchronization:
      return "barriers, critical sections and atomic updates order the "
             "conflicting accesses, so the shared updates cannot "
             "interleave";
    case Category::UseOfSimdDirectives:
      return "the omp simd loop writes each element from its own "
             "iteration only, with no loop-carried dependence between "
             "lanes";
    case Category::UseOfAcceleratorDirectives:
      return "the omp target teams loop partitions elements across "
             "device threads disjointly, so device iterations never "
             "conflict";
    case Category::UseOfSpecialLanguageFeatures:
      return "language features (thread ids indexing disjoint cells, "
             "explicit masters) keep every thread on its own data";
    case Category::NumericalKernels:
      return "the numerical kernel writes disjoint elements per "
             "iteration; subscript tests prove all accesses independent";
  }
  return "";
}

}  // namespace

const std::vector<std::string>& drb_category_kb() {
  static const std::vector<std::string> kb = [] {
    std::vector<std::string> chunks;
    chunks.reserve(drb::kCategoryCount);
    for (drb::Category c : drb::all_categories()) {
      chunks.push_back(drb::category_name(c) + " (" +
                       (drb::category_has_race(c) ? "racy" : "race-free") +
                       "): " + category_blurb(c) + ".");
    }
    return chunks;
  }();
  return kb;
}

VerifyRequest VerifyRequest::single(std::string source, std::string name,
                                    bool explain) {
  VerifyRequest request;
  request.unit = name;
  request.functions.push_back({std::move(name), std::move(source)});
  request.explain = explain;
  return request;
}

bool VerifyResponse::has_errors() const {
  for (const FunctionReport& f : functions) {
    if (f.has_errors()) return true;
  }
  return false;
}

std::string VerifyResponse::summary() const {
  std::size_t with_errors = 0;
  for (const FunctionReport& f : functions) {
    if (f.has_errors()) ++with_errors;
  }
  std::string s = unit + ": " + std::to_string(functions.size()) +
                  (functions.size() == 1 ? " function" : " functions") + " (" +
                  std::to_string(cache_hits) + " cached), " +
                  std::to_string(with_errors) + " with errors";
  if (parse_failures > 0) {
    s += ", " + std::to_string(parse_failures) + " unparsable";
  }
  return s;
}

namespace {

std::uint64_t hash_options(const VerifierOptions& o) {
  Fnv1aHasher h;
  h.u8(o.verify_regions ? 1 : 0);
  h.u8(o.deep_traversal ? 1 : 0);
  h.u8(o.exhaustive ? 1 : 0);
  h.u8(o.scoping.extended_lints ? 1 : 0);
  h.u8(o.dependence.gcd_test ? 1 : 0);
  h.u8(o.dependence.range_test ? 1 : 0);
  h.u8(o.dependence.notes ? 1 : 0);
  return h.value();
}

std::uint64_t cache_key(std::uint64_t fingerprint, std::uint64_t options) {
  Fnv1aHasher h;
  h.u64(fingerprint);
  h.u64(options);
  return h.value();
}

}  // namespace

VerificationService::VerificationService(ServiceOptions options)
    : options_(std::move(options)),
      options_hash_(hash_options(options_.verifier)),
      requests_(registry_.counter("analysis.requests")),
      functions_(registry_.counter("analysis.functions")),
      hits_(registry_.counter("analysis.cache.hits")),
      misses_(registry_.counter("analysis.cache.misses")),
      evictions_(registry_.counter("analysis.cache.evictions")),
      parse_failures_(registry_.counter("analysis.parse_failures")),
      errors_found_(registry_.counter("analysis.errors_found")),
      verify_seconds_(registry_.histogram("analysis.verify.seconds")) {
  if (options_.cache_capacity == 0) options_.cache_capacity = 1;
  if (options_.ground_rationales) {
    retrieval::TfidfEmbedder embedder;
    embedder.fit(drb_category_kb());
    grounding_store_ =
        std::make_unique<retrieval::VectorStore>(std::move(embedder));
    grounding_store_->add_all(drb_category_kb());
  }
}

ThreadPool& VerificationService::pool() const {
  return options_.pool != nullptr ? *options_.pool : ThreadPool::global();
}

void VerificationService::touch_locked(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru);
}

void VerificationService::evict_locked() {
  while (cache_.size() > options_.cache_capacity && !lru_.empty()) {
    const std::uint64_t key = lru_.back();
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      for (std::uint64_t th : it->second.text_hashes) {
        const auto alias = text_index_.find(th);
        if (alias != text_index_.end() && alias->second == key) {
          text_index_.erase(alias);
        }
      }
      cache_.erase(it);
    }
    lru_.pop_back();
    evictions_.add(1);
  }
}

void VerificationService::process_program(const minilang::Program& program,
                                          std::uint64_t text_hash,
                                          bool explain, FunctionReport& out) {
  out.parsed = true;
  // Fingerprint *and analyze* the canonical C-render → parse normal form
  // (see minilang::canonical_fingerprint): the renderers represent
  // declaration initializers differently, so analyzing the as-parsed AST
  // would give the same cache key different statement numbering depending
  // on which surface arrived first. One representative per equivalence
  // class keeps cached and fresh reports bitwise-identical.
  const minilang::Program normal =
      minilang::parse_any(minilang::render(program, minilang::Flavor::C));
  out.fingerprint = minilang::fingerprint(normal);
  const std::uint64_t key = cache_key(out.fingerprint, options_hash_);
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      touch_locked(it->second);
      out.cache_hit = true;
      out.report = it->second.report;
      if (text_hash != 0 &&
          text_index_.try_emplace(text_hash, key).second) {
        it->second.text_hashes.push_back(text_hash);
      }
      hits_.add(1);
    }
  }
  if (!out.cache_hit) {
    misses_.add(1);
    {
      HPCGPT_TRACE("analysis.function");
      // Qualified: the member verify(VerifyRequest) shadows the pass
      // runner inside the class.
      out.report = analysis::verify(normal, options_.verifier);
    }
    std::lock_guard lock(mutex_);
    const auto [it, inserted] = cache_.try_emplace(key);
    if (inserted) {
      it->second.fingerprint = out.fingerprint;
      it->second.report = out.report;
      lru_.push_front(key);
      it->second.lru = lru_.begin();
    } else {
      // A concurrent worker analyzed the same content first; both ran the
      // deterministic verifier, so the results are identical.
      touch_locked(it->second);
    }
    if (text_hash != 0 && text_index_.try_emplace(text_hash, key).second) {
      it->second.text_hashes.push_back(text_hash);
    }
    evict_locked();
  }
  if (out.has_errors()) errors_found_.add(1);
  if (explain) explain_report(key, out);
}

void VerificationService::explain_report(std::uint64_t key,
                                         FunctionReport& out) {
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end() && it->second.explained) {
      out.rationale = it->second.rationale;
      out.grounding = it->second.grounding;
      return;
    }
  }
  // Both products are deterministic functions of the report, so a
  // concurrent duplicate computation memoizes the same values.
  out.rationale = rationale_text(out.report);
  out.grounding.clear();
  if (grounding_store_ != nullptr) {
    std::string query = out.rationale;
    if (const Diagnostic* e = out.report.first_error()) {
      query += " " + e->variable + " " + e->message;
    }
    for (const retrieval::Hit& hit :
         grounding_store_->top_k(query, options_.grounding_top_k)) {
      if (hit.score >= options_.grounding_min_score) {
        out.grounding.push_back(hit.text);
      }
    }
  }
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end() && !it->second.explained) {
    it->second.rationale = out.rationale;
    it->second.grounding = out.grounding;
    it->second.explained = true;
  }
}

VerifyResponse VerificationService::verify(const VerifyRequest& request) {
  HPCGPT_TRACE("analysis.verify");
  Timer timer;
  requests_.add(1);
  functions_.add(request.functions.size());

  VerifyResponse response;
  response.unit = request.unit;
  response.functions.resize(request.functions.size());

  // Text-level pass: an exact re-submission of an already-analyzed
  // function resolves without parsing (the dominant warm-cache path).
  std::vector<std::size_t> pending;
  pending.reserve(request.functions.size());
  for (std::size_t i = 0; i < request.functions.size(); ++i) {
    FunctionReport& out = response.functions[i];
    out.name = request.functions[i].name;
    const std::uint64_t text_hash = fnv1a(request.functions[i].source);
    std::uint64_t key = 0;
    bool text_hit = false;
    {
      std::lock_guard lock(mutex_);
      const auto alias = text_index_.find(text_hash);
      if (alias != text_index_.end()) {
        const auto it = cache_.find(alias->second);
        if (it != cache_.end()) {
          touch_locked(it->second);
          key = alias->second;
          text_hit = true;
          out.parsed = true;
          out.cache_hit = true;
          out.fingerprint = it->second.fingerprint;
          out.report = it->second.report;
          hits_.add(1);
        }
      }
    }
    if (text_hit) {
      if (out.has_errors()) errors_found_.add(1);
      if (request.explain) explain_report(key, out);
    } else {
      pending.push_back(i);
    }
  }

  // Everything else parses and analyzes in parallel; each worker adopts
  // the request's analysis.verify span as parent, so per-function spans
  // nest under it in the trace.
  if (!pending.empty()) {
    const obs::TraceContext context = obs::current_trace_context();
    parallel_for(pool(), 0, pending.size(), [&](std::size_t j) {
      HPCGPT_TRACE_ADOPT(context);
      const std::size_t i = pending[j];
      const FunctionInput& input = request.functions[i];
      FunctionReport& out = response.functions[i];
      minilang::Program program;
      try {
        program = minilang::parse_any(input.source);
      } catch (const Error& e) {
        out.parsed = false;
        out.parse_error = e.what();
        parse_failures_.add(1);
        return;
      }
      process_program(program, fnv1a(input.source), request.explain, out);
    });
  }

  for (const FunctionReport& f : response.functions) {
    if (!f.parsed) {
      ++response.parse_failures;
    } else if (f.cache_hit) {
      ++response.cache_hits;
    } else {
      ++response.cache_misses;
    }
  }
  verify_seconds_.observe(timer.seconds());
  return response;
}

FunctionReport VerificationService::verify_program(
    const minilang::Program& program, std::string name, bool explain) {
  HPCGPT_TRACE("analysis.verify");
  Timer timer;
  requests_.add(1);
  functions_.add(1);
  FunctionReport out;
  out.name = std::move(name);
  process_program(program, 0, explain, out);
  verify_seconds_.observe(timer.seconds());
  return out;
}

VerificationService::CacheStats VerificationService::cache_stats() const {
  std::lock_guard lock(mutex_);
  CacheStats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.evictions = evictions_.value();
  s.entries = cache_.size();
  s.capacity = options_.cache_capacity;
  return s;
}

void VerificationService::clear_cache() {
  std::lock_guard lock(mutex_);
  cache_.clear();
  text_index_.clear();
  lru_.clear();
}

}  // namespace hpcgpt::analysis
