#include "hpcgpt/analysis/stmt_index.hpp"

namespace hpcgpt::analysis {

using minilang::Program;
using minilang::Stmt;

namespace {

void number(const Stmt& s, std::vector<const Stmt*>& order,
            std::unordered_map<const Stmt*, int>& ids) {
  ids.emplace(&s, static_cast<int>(order.size()));
  order.push_back(&s);
  for (const Stmt& inner : s.body) number(inner, order, ids);
}

}  // namespace

StmtIndex StmtIndex::build(const Program& program) {
  StmtIndex index;
  for (const Stmt& s : program.body) number(s, index.order_, index.ids_);
  return index;
}

int StmtIndex::id_of(const Stmt* stmt) const {
  const auto it = ids_.find(stmt);
  return it == ids_.end() ? -1 : it->second;
}

const Stmt* StmtIndex::stmt_of(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= order_.size()) return nullptr;
  return order_[id];
}

}  // namespace hpcgpt::analysis
