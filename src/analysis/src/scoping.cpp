#include "hpcgpt/analysis/scoping.hpp"

namespace hpcgpt::analysis {

using minilang::Reduction;
using minilang::Stmt;

namespace {

void emit(std::vector<Diagnostic>& out, Severity severity,
          const std::string& var, std::vector<int> stmts, std::string msg) {
  Diagnostic d;
  d.pass = PassId::Scoping;
  d.severity = severity;
  d.variable = var;
  d.stmts = std::move(stmts);
  d.message = std::move(msg);
  out.push_back(std::move(d));
}

}  // namespace

void run_scoping_pass(const Stmt& loop, const LoopAccesses& accesses,
                      const StmtIndex& /*index*/,
                      const ScopingOptions& options,
                      std::vector<Diagnostic>& out) {
  // ---- the three verdict rules, per scalar, first match wins ----
  // (conditions, order, and messages are the original detector's)
  for (const auto& [name, use] : accesses.shared) {
    if (use.unprot_write && use.any_other_thread_access) {
      emit(out, Severity::Error, name, use.stmts,
           "shared scalar written without protection");
    } else if (use.unprot_write) {
      // Written by every iteration with no clause: write-write race.
      emit(out, Severity::Error, name, use.stmts,
           "unprivatized scalar assigned in parallel loop");
    } else if (use.prot_write && use.unprot_read) {
      emit(out, Severity::Error, name, use.stmts,
           "protected write but unprotected read of shared scalar");
    }
  }

  if (!options.extended_lints) return;

  // ---- clause lints (never verdict-bearing) ----
  for (const std::string& name : loop.clauses.priv) {
    const auto it = accesses.privatized.find(name);
    if (it == accesses.privatized.end()) {
      emit(out, Severity::Note, name, {},
           "private clause names a variable the loop never touches");
      continue;
    }
    const ScalarUse& use = it->second;
    if (use.first_read_order != -1 &&
        (use.first_write_order == -1 ||
         use.first_read_order < use.first_write_order)) {
      emit(out, Severity::Warning, name, use.stmts,
           "private copy may be read before it is written (its value is "
           "undefined inside the loop)");
    }
  }
  for (const std::string& name : loop.clauses.firstprivate) {
    const auto it = accesses.privatized.find(name);
    if (it == accesses.privatized.end()) {
      emit(out, Severity::Note, name, {},
           "firstprivate clause names a variable the loop never touches");
      continue;
    }
    const ScalarUse& use = it->second;
    if (use.first_write_order != -1 &&
        (use.first_read_order == -1 ||
         use.first_write_order < use.first_read_order)) {
      emit(out, Severity::Note, name, use.stmts,
           "firstprivate copy is overwritten before any read — private(...) "
           "would suffice");
    }
  }
  for (const Reduction& r : loop.clauses.reductions) {
    const auto it = accesses.reductions.find(r.var);
    if (it == accesses.reductions.end()) {
      emit(out, Severity::Note, r.var, {},
           "reduction clause names a variable the loop never touches");
      continue;
    }
    if (it->second.non_accumulating_write) {
      emit(out, Severity::Warning, r.var, it->second.stmts,
           "reduction variable is assigned without accumulating — the "
           "combined result discards other iterations");
    }
  }
}

}  // namespace hpcgpt::analysis
