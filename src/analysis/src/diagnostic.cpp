#include "hpcgpt/analysis/diagnostic.hpp"

#include <sstream>
#include <unordered_set>

#include "hpcgpt/support/hash.hpp"

namespace hpcgpt::analysis {

bool operator==(const Diagnostic& a, const Diagnostic& b) {
  return a.pass == b.pass && a.severity == b.severity &&
         a.variable == b.variable && a.stmts == b.stmts &&
         a.message == b.message;
}

std::uint64_t fingerprint(const Diagnostic& d) {
  Fnv1aHasher h;
  h.u8(static_cast<std::uint8_t>(d.pass));
  h.u8(static_cast<std::uint8_t>(d.severity));
  h.str(d.variable);
  h.u64(d.stmts.size());
  for (int s : d.stmts) h.i64(s);
  return h.value();
}

std::uint64_t fingerprint(const Report& report) {
  Fnv1aHasher h;
  h.u64(report.diagnostics.size());
  for (const Diagnostic& d : report.diagnostics) {
    h.u64(fingerprint(d));
    h.str(d.message);  // identity fingerprints exclude it; this one must not
  }
  h.u8(report.saw_parallel_loop ? 1 : 0);
  h.u8(report.saw_parallel_region ? 1 : 0);
  h.u64(report.statements);
  return h.value();
}

std::size_t deduplicate(std::vector<Diagnostic>& diagnostics) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(diagnostics.size());
  std::size_t kept = 0;
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    if (!seen.insert(fingerprint(diagnostics[i])).second) continue;
    if (kept != i) diagnostics[kept] = std::move(diagnostics[i]);
    ++kept;
  }
  const std::size_t removed = diagnostics.size() - kept;
  diagnostics.resize(kept);
  return removed;
}

std::string pass_name(PassId pass) {
  switch (pass) {
    case PassId::Mhp:
      return "mhp";
    case PassId::Scoping:
      return "scoping";
    case PassId::Dependence:
      return "dependence";
  }
  return "unknown";
}

std::string severity_name(Severity severity) {
  switch (severity) {
    case Severity::Error:
      return "error";
    case Severity::Warning:
      return "warning";
    case Severity::Note:
      return "note";
  }
  return "unknown";
}

std::string to_string(const Diagnostic& d) {
  std::ostringstream os;
  os << "[" << pass_name(d.pass) << "] " << severity_name(d.severity) << ": '"
     << d.variable << "' — " << d.message;
  if (!d.stmts.empty()) {
    os << " (stmt";
    if (d.stmts.size() > 1) os << "s";
    os << " ";
    for (std::size_t i = 0; i < d.stmts.size(); ++i) {
      if (i > 0) os << ",";
      os << d.stmts[i];
    }
    os << ")";
  }
  return os.str();
}

bool Report::has_errors() const { return first_error() != nullptr; }

const Diagnostic* Report::first_error() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::Error) return &d;
  }
  return nullptr;
}

std::size_t Report::count(PassId pass) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.pass == pass) ++n;
  }
  return n;
}

std::size_t Report::count(PassId pass, Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.pass == pass && d.severity == severity) ++n;
  }
  return n;
}

std::string Report::summary() const {
  std::ostringstream os;
  const PassId passes[] = {PassId::Mhp, PassId::Scoping, PassId::Dependence};
  bool first = true;
  for (PassId p : passes) {
    if (!first) os << " | ";
    first = false;
    os << pass_name(p) << ": ";
    const std::size_t errors = count(p, Severity::Error);
    const std::size_t warnings = count(p, Severity::Warning);
    const std::size_t notes = count(p, Severity::Note);
    if (errors == 0 && warnings == 0 && notes == 0) {
      os << "0";
      continue;
    }
    bool any = false;
    if (errors > 0) {
      os << errors << (errors == 1 ? " error" : " errors");
      any = true;
    }
    if (warnings > 0) {
      if (any) os << ", ";
      os << warnings << (warnings == 1 ? " warning" : " warnings");
      any = true;
    }
    if (notes > 0) {
      if (any) os << ", ";
      os << notes << (notes == 1 ? " note" : " notes");
    }
  }
  return os.str();
}

std::string Report::render() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics) os << to_string(d) << "\n";
  os << summary() << "\n";
  return os.str();
}

}  // namespace hpcgpt::analysis
