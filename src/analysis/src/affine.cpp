#include "hpcgpt/analysis/affine.hpp"

namespace hpcgpt::analysis {

using minilang::Expr;

AffineIndex affine_in(const Expr& index, const std::string& loop_var) {
  AffineIndex out;
  switch (index.kind) {
    case Expr::Kind::IntLit:
      out.affine = true;
      out.offset = index.value;
      return out;
    case Expr::Kind::ScalarRef:
      if (index.name == loop_var) {
        out.affine = true;
        out.scale = 1;
      }
      return out;  // other scalars: not affine in the loop variable
    case Expr::Kind::BinOp: {
      const AffineIndex l = affine_in(*index.lhs, loop_var);
      const AffineIndex r = affine_in(*index.rhs, loop_var);
      if (!l.affine || !r.affine) return out;
      switch (index.op) {
        case '+':
          out.affine = true;
          out.scale = l.scale + r.scale;
          out.offset = l.offset + r.offset;
          return out;
        case '-':
          out.affine = true;
          out.scale = l.scale - r.scale;
          out.offset = l.offset - r.offset;
          return out;
        case '*':
          // Affine only when one side is a constant.
          if (l.scale == 0) {
            out.affine = true;
            out.scale = l.offset * r.scale;
            out.offset = l.offset * r.offset;
          } else if (r.scale == 0) {
            out.affine = true;
            out.scale = l.scale * r.offset;
            out.offset = l.offset * r.offset;
          }
          return out;
        default:
          return out;  // '/', '%', comparisons: not affine
      }
    }
    case Expr::Kind::ArrayRef:
    case Expr::Kind::ThreadId:
      return out;
  }
  return out;
}

}  // namespace hpcgpt::analysis
