#include "hpcgpt/analysis/mhp.hpp"

#include <map>
#include <set>
#include <string>

namespace hpcgpt::analysis {

using minilang::Expr;
using minilang::Program;
using minilang::Stmt;

namespace {

/// Applies `fn` to every parallel construct of the program (toplevel or
/// nested under serial control flow; parallel constructs do not nest in
/// the mini-language).
template <typename Fn>
void for_each_parallel(const std::vector<Stmt>& body, Fn&& fn) {
  for (const Stmt& s : body) {
    if (s.kind == Stmt::Kind::ParallelFor ||
        s.kind == Stmt::Kind::ParallelRegion) {
      fn(s);
    } else {
      for_each_parallel(s.body, fn);
    }
  }
}

}  // namespace

bool MhpInfo::may_happen_in_parallel(int stmt_a, int stmt_b) const {
  const auto a = placement.find(stmt_a);
  const auto b = placement.find(stmt_b);
  if (a == placement.end() || b == placement.end()) return false;  // serial
  if (a->second.construct != b->second.construct) return false;
  if (a->second.phase != b->second.phase) return false;
  if (stmt_a == stmt_b) {
    // The same statement races with itself only when several threads
    // execute it (region bodies and loop iterations, not master/single).
    return !a->second.single_thread;
  }
  // Two master/single statements both run on thread 0, in program order.
  return !(a->second.single_thread && b->second.single_thread);
}

namespace {

class MhpBuilder {
 public:
  MhpBuilder(const StmtIndex& index, MhpInfo& info)
      : index_(index), info_(info) {}

  void region(const Stmt& r) {
    ++info_.parallel_constructs;
    const int id = index_.id_of(&r);
    int phase = 0;
    for (const Stmt& child : r.body) {
      // Phases split exactly where the simulated runtime segments
      // execution: at a direct-child barrier, and after a single
      // construct (implicit barrier).
      if (child.kind == Stmt::Kind::Barrier) {
        place(child, id, phase, false);
        ++phase;
        continue;
      }
      place_subtree(child, id, phase, /*single_thread=*/false);
      if (child.kind == Stmt::Kind::Single) ++phase;
    }
    info_.phases += static_cast<std::size_t>(phase) + 1;
  }

  void loop(const Stmt& l) {
    ++info_.parallel_constructs;
    const int id = index_.id_of(&l);
    // All iterations of a worksharing loop are concurrent: one phase.
    place(l, id, 0, false);
    for (const Stmt& inner : l.body) place_subtree(inner, id, 0, false);
    info_.phases += 1;
  }

 private:
  void place(const Stmt& s, int construct, int phase, bool single_thread) {
    info_.placement[index_.id_of(&s)] =
        MhpInfo::Placement{construct, phase, single_thread};
  }

  void place_subtree(const Stmt& s, int construct, int phase,
                     bool single_thread) {
    const bool here = single_thread || s.kind == Stmt::Kind::Master ||
                      s.kind == Stmt::Kind::Single;
    place(s, construct, phase, here);
    for (const Stmt& inner : s.body) {
      place_subtree(inner, construct, phase, here);
    }
  }

  const StmtIndex& index_;
  MhpInfo& info_;
};

}  // namespace

MhpInfo compute_mhp(const Program& program, const StmtIndex& index) {
  MhpInfo info;
  MhpBuilder builder(index, info);
  for_each_parallel(program.body, [&](const Stmt& s) {
    if (s.kind == Stmt::Kind::ParallelRegion) {
      builder.region(s);
    } else {
      builder.loop(s);
    }
  });
  return info;
}

// ===================================================== region verification

namespace {

/// One access inside a parallel region with its phase placement and a
/// symbolic address: scalars, constant elements, thread-offset elements
/// (a[tid+c]), or unknown. Accesses under master/single are folded with
/// tid = 0 (the runtime executes them on thread 0).
struct RegAccess {
  enum class Addr { Scalar, Const, TidOffset, Unknown };

  bool is_write = false;
  bool prot = false;  ///< under atomic/critical
  bool single_thread = false;
  int phase = 0;
  int stmt = -1;
  Addr addr = Addr::Scalar;
  std::int64_t off = 0;
};

/// Linear decomposition of an index expression in the thread id:
/// index == coeff * tid + off.
struct TidAffine {
  bool ok = false;
  std::int64_t coeff = 0;
  std::int64_t off = 0;
};

TidAffine tid_affine(const Expr& e) {
  TidAffine out;
  switch (e.kind) {
    case Expr::Kind::IntLit:
      out.ok = true;
      out.off = e.value;
      return out;
    case Expr::Kind::ThreadId:
      out.ok = true;
      out.coeff = 1;
      return out;
    case Expr::Kind::BinOp: {
      const TidAffine l = tid_affine(*e.lhs);
      const TidAffine r = tid_affine(*e.rhs);
      if (!l.ok || !r.ok) return out;
      switch (e.op) {
        case '+':
          out = {true, l.coeff + r.coeff, l.off + r.off};
          return out;
        case '-':
          out = {true, l.coeff - r.coeff, l.off - r.off};
          return out;
        case '*':
          if (l.coeff == 0) {
            out = {true, l.off * r.coeff, l.off * r.off};
          } else if (r.coeff == 0) {
            out = {true, l.coeff * r.off, l.off * r.off};
          }
          return out;
        default:
          return out;  // '%', '/', comparisons: unknown address
      }
    }
    default:
      return out;  // scalars (unknown value), nested arrays
  }
}

class RegionChecker {
 public:
  RegionChecker(const Stmt& region, const StmtIndex& index,
                const MhpInfo& info)
      : region_(region), index_(index), info_(info) {}

  void run(std::vector<Diagnostic>& out) {
    scan(region_.body, /*in_prot=*/false);
    check(out);
  }

 private:
  void scan(const std::vector<Stmt>& body, bool in_prot) {
    for (const Stmt& s : body) {
      const int id = index_.id_of(&s);
      switch (s.kind) {
        case Stmt::Kind::Assign:
          record(*s.target, true, in_prot, id);
          record(*s.value, false, in_prot, id);
          break;
        case Stmt::Kind::Atomic:
          record(*s.target, true, /*in_prot=*/true, id);
          record(*s.value, false, /*in_prot=*/true, id);
          break;
        case Stmt::Kind::Critical:
          scan(s.body, /*in_prot=*/true);
          break;
        case Stmt::Kind::Master:
        case Stmt::Kind::Single:
          scan(s.body, in_prot);  // placement carries single_thread
          break;
        case Stmt::Kind::If:
          record(*s.cond, false, in_prot, id);
          scan(s.body, in_prot);
          break;
        case Stmt::Kind::SeqFor: {
          record(*s.lo, false, in_prot, id);
          record(*s.hi, false, in_prot, id);
          const bool added = locals_.insert(s.loop_var).second;
          scan(s.body, in_prot);
          if (added) locals_.erase(s.loop_var);
          break;
        }
        default:
          break;  // barriers carry no accesses; nested loops cannot occur
      }
    }
  }

  void record(const Expr& e, bool is_write, bool in_prot, int stmt_id) {
    switch (e.kind) {
      case Expr::Kind::ScalarRef: {
        if (locals_.count(e.name) > 0) return;
        if (region_.clauses.is_private(e.name) ||
            region_.clauses.is_reduction(e.name)) {
          return;
        }
        push(e.name, is_write, in_prot, stmt_id, RegAccess::Addr::Scalar, 0);
        return;
      }
      case Expr::Kind::ArrayRef: {
        const auto placed = info_.placement.find(stmt_id);
        const bool st =
            placed != info_.placement.end() && placed->second.single_thread;
        TidAffine idx = tid_affine(*e.index);
        // Index expressions over region-local sequential loop variables
        // or shared scalars have unknown values.
        if (idx.ok && mentions_local(*e.index)) idx.ok = false;
        RegAccess::Addr addr = RegAccess::Addr::Unknown;
        std::int64_t off = 0;
        if (idx.ok) {
          if (st) {
            // master/single run on thread 0: tid folds to a constant.
            addr = RegAccess::Addr::Const;
            off = idx.off;
          } else if (idx.coeff == 0) {
            addr = RegAccess::Addr::Const;
            off = idx.off;
          } else if (idx.coeff == 1) {
            addr = RegAccess::Addr::TidOffset;
            off = idx.off;
          }
        }
        push(e.name, is_write, in_prot, stmt_id, addr, off);
        record(*e.index, false, in_prot, stmt_id);
        return;
      }
      case Expr::Kind::BinOp:
        record(*e.lhs, false, in_prot, stmt_id);
        record(*e.rhs, false, in_prot, stmt_id);
        return;
      default:
        return;
    }
  }

  bool mentions_local(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::ScalarRef:
        return locals_.count(e.name) > 0;
      case Expr::Kind::ArrayRef:
        return mentions_local(*e.index);
      case Expr::Kind::BinOp:
        return mentions_local(*e.lhs) || mentions_local(*e.rhs);
      default:
        return false;
    }
  }

  void push(const std::string& name, bool is_write, bool in_prot, int stmt_id,
            RegAccess::Addr addr, std::int64_t off) {
    const auto placed = info_.placement.find(stmt_id);
    RegAccess a;
    a.is_write = is_write;
    a.prot = in_prot;
    a.single_thread =
        placed != info_.placement.end() && placed->second.single_thread;
    a.phase = placed != info_.placement.end() ? placed->second.phase : 0;
    a.stmt = stmt_id;
    a.addr = addr;
    a.off = off;
    vars_[name].push_back(a);
  }

  enum class Overlap { No, Maybe, Yes };

  /// Can the two accesses, executed by *different* threads in the same
  /// phase, touch the same address?
  Overlap overlap(const RegAccess& a, const RegAccess& b) const {
    const std::int64_t threads =
        static_cast<std::int64_t>(region_.clauses.num_threads);
    using Addr = RegAccess::Addr;
    if (a.addr == Addr::Unknown || b.addr == Addr::Unknown) {
      return Overlap::Maybe;
    }
    if (a.addr == Addr::Scalar || b.addr == Addr::Scalar) {
      return Overlap::Yes;  // same variable, one address
    }
    if (a.addr == Addr::Const && b.addr == Addr::Const) {
      return a.off == b.off ? Overlap::Yes : Overlap::No;
    }
    if (a.addr == Addr::TidOffset && b.addr == Addr::TidOffset) {
      // tid1 + c1 == tid2 + c2 with tid1 != tid2 needs c1 != c2, and a
      // thread id gap of |c1 - c2| within the team.
      const std::int64_t gap = a.off > b.off ? a.off - b.off : b.off - a.off;
      if (gap == 0) return Overlap::No;
      if (threads > 0 && gap >= threads) return Overlap::No;
      return Overlap::Yes;
    }
    // Const element k vs thread-offset element tid + c: thread k - c hits
    // the constant element.
    const RegAccess& konst = a.addr == Addr::Const ? a : b;
    const RegAccess& tid = a.addr == Addr::Const ? b : a;
    const std::int64_t t = konst.off - tid.off;
    if (t < 0) return Overlap::No;
    if (threads > 0 && t >= threads) return Overlap::No;
    if (konst.single_thread && t == 0) {
      return Overlap::No;  // the colliding thread IS the master thread
    }
    return Overlap::Yes;
  }

  void check(std::vector<Diagnostic>& out) {
    const int region_id = index_.id_of(&region_);
    for (const auto& [name, accs] : vars_) {
      bool flagged = false;
      const RegAccess* maybe_a = nullptr;
      const RegAccess* maybe_b = nullptr;
      for (std::size_t i = 0; i < accs.size() && !flagged; ++i) {
        for (std::size_t j = i; j < accs.size() && !flagged; ++j) {
          const RegAccess& a = accs[i];
          const RegAccess& b = accs[j];
          if (!a.is_write && !b.is_write) continue;
          if (a.phase != b.phase) continue;
          if (a.single_thread && b.single_thread) continue;  // both thread 0
          if (a.prot && b.prot) continue;  // mutually ordered
          if (i == j) {
            // One statement, executed concurrently by every thread.
            if (a.single_thread) continue;
            if (a.addr == RegAccess::Addr::TidOffset) continue;  // disjoint
            if (a.addr == RegAccess::Addr::Unknown) {
              if (!maybe_a) maybe_a = &a, maybe_b = &b;
              continue;
            }
            report(out, name, a, b,
                   "written concurrently by every thread in the same "
                   "barrier phase");
            flagged = true;
            continue;
          }
          switch (overlap(a, b)) {
            case Overlap::Yes:
              report(out, name, a, b,
                     "conflicting accesses in the same barrier phase (no "
                     "intervening barrier orders them)");
              flagged = true;
              break;
            case Overlap::Maybe:
              if (!maybe_a) maybe_a = &a, maybe_b = &b;
              break;
            case Overlap::No:
              break;
          }
        }
      }
      if (!flagged && maybe_a != nullptr) {
        Diagnostic d;
        d.pass = PassId::Mhp;
        d.severity = Severity::Warning;
        d.variable = name;
        d.stmts = {region_id, maybe_a->stmt, maybe_b->stmt};
        d.message =
            "cannot prove concurrent accesses in the same barrier phase "
            "touch distinct elements";
        out.push_back(std::move(d));
      }
    }
  }

  void report(std::vector<Diagnostic>& out, const std::string& name,
              const RegAccess& a, const RegAccess& b, std::string msg) {
    Diagnostic d;
    d.pass = PassId::Mhp;
    d.severity = Severity::Error;
    d.variable = name;
    d.stmts = {a.stmt};
    if (b.stmt != a.stmt) d.stmts.push_back(b.stmt);
    d.message = std::move(msg);
    out.push_back(std::move(d));
  }

  const Stmt& region_;
  const StmtIndex& index_;
  const MhpInfo& info_;
  std::set<std::string> locals_;
  std::map<std::string, std::vector<RegAccess>> vars_;
};

}  // namespace

void run_mhp_pass(const Program& program, const StmtIndex& index,
                  const MhpInfo& info, std::vector<Diagnostic>& out) {
  for_each_parallel(program.body, [&](const Stmt& s) {
    if (s.kind != Stmt::Kind::ParallelRegion) return;
    RegionChecker(s, index, info).run(out);
  });
}

}  // namespace hpcgpt::analysis
