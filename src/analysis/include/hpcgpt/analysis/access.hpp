#pragma once

#include <map>
#include <string>
#include <vector>

#include "hpcgpt/analysis/affine.hpp"
#include "hpcgpt/analysis/stmt_index.hpp"
#include "hpcgpt/minilang/ast.hpp"

namespace hpcgpt::analysis {

/// Access classification of one scalar inside a parallel loop. The
/// unprot/prot/master flags reproduce the classification the original
/// single-pass LLOV detector used (they are verdict-bearing); the order
/// fields extend it for the scoping lints (read-before-write detection).
struct ScalarUse {
  bool unprot_write = false;
  bool unprot_read = false;
  bool prot_write = false;    ///< inside critical/atomic
  bool master_write = false;  ///< inside master/single (one thread)
  bool any_other_thread_access = false;
  /// Collection-order position of the first read / first write (-1 = no
  /// such access). Collection order approximates program order: branches
  /// are explored in sequence, so a read that precedes every write on the
  /// straight-line walk is a may-read-before-write.
  int first_read_order = -1;
  int first_write_order = -1;
  /// A plain Assign whose RHS does not mention the variable (flags
  /// reduction accumulators that are overwritten instead of accumulated).
  bool non_accumulating_write = false;
  std::vector<int> stmts;  ///< ids of statements touching the scalar
};

/// One array access inside a parallel loop with its affine decomposition.
struct ArrayAccess {
  bool is_write = false;
  AffineIndex index;
  bool analyzable = true;
  int stmt = -1;
};

/// Everything the scoping and dependence passes need about one parallel
/// loop, collected in a single walk. Scalars are split by data-sharing
/// class: `shared` drives the race checks (exactly the accesses the
/// original detector considered), `privatized` / `reductions` feed the
/// clause lints.
struct LoopAccesses {
  std::map<std::string, ScalarUse> shared;
  std::map<std::string, ScalarUse> privatized;  ///< private+firstprivate
  std::map<std::string, ScalarUse> reductions;
  /// Array accesses outside critical/atomic/master (dependence-test
  /// candidates, as in the original detector).
  std::map<std::string, std::vector<ArrayAccess>> arrays;
};

/// Walks `loop` (a ParallelFor) and classifies every access. The loop
/// variable and nested sequential-loop variables are thread-local and do
/// not appear in the result.
LoopAccesses collect_loop_accesses(const minilang::Stmt& loop,
                                   const StmtIndex& index);

}  // namespace hpcgpt::analysis
