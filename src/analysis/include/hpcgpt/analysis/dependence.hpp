#pragma once

#include <vector>

#include "hpcgpt/analysis/access.hpp"
#include "hpcgpt/analysis/diagnostic.hpp"
#include "hpcgpt/minilang/ast.hpp"

namespace hpcgpt::analysis {

struct DependenceOptions {
  /// GCD test for coupled subscripts with unequal strides: report a
  /// dependence only when gcd(s1, s2) divides the offset difference
  /// (instead of the unconditional conservative report). Off in
  /// LLOV-compatibility mode — the original tool reports MIV pairs
  /// unconditionally.
  bool gcd_test = true;
  /// Bounds/range test on constant-bound loops: a dependence whose
  /// distance places the conflicting iteration outside the trip range is
  /// refuted (fixes the disjoint-halves false positive). Off in
  /// LLOV-compatibility mode — the original tool ignores loop bounds.
  bool range_test = true;
  /// Emit Note findings for refuted dependences and skipped non-affine
  /// subscripts (so the lint output explains silence).
  bool notes = true;
};

/// Cross-iteration dependence testing (ZIV / strong SIV / MIV with
/// optional GCD and range refinement) over the 1-D affine array accesses
/// of one parallel loop.
void run_dependence_pass(const minilang::Stmt& loop,
                         const LoopAccesses& accesses, const StmtIndex& index,
                         const DependenceOptions& options,
                         std::vector<Diagnostic>& out);

}  // namespace hpcgpt::analysis
