#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hpcgpt::analysis {

/// The three composable passes of the static race verifier. The pass that
/// produced a finding is part of the diagnostic so downstream consumers
/// (the lint CLI, the datagen rationale text, the agreement eval) can
/// attribute and summarize findings per pass.
enum class PassId {
  Mhp,         ///< may-happen-in-parallel region/phase analysis
  Scoping,     ///< data-sharing & scoping clause lint
  Dependence,  ///< loop dependence testing on affine subscripts
};

/// Finding severity. Only `Error` findings are race verdicts; `Warning`
/// marks likely-but-unproven problems and `Note` records analysis facts
/// (skipped subscripts, refuted dependences, redundant clauses).
enum class Severity { Error, Warning, Note };

std::string pass_name(PassId pass);
std::string severity_name(Severity severity);

/// One structured finding. `stmts` are pre-order statement ids over the
/// analysed program (see StmtIndex); most findings carry the construct id
/// plus the ids of the conflicting accesses.
struct Diagnostic {
  PassId pass = PassId::Scoping;
  Severity severity = Severity::Error;
  std::string variable;      ///< the conflicting/misscoped variable
  std::vector<int> stmts;    ///< statement ids involved
  std::string message;       ///< human-readable explanation
};

/// "[pass] severity: 'var' — message (stmts i,j)".
std::string to_string(const Diagnostic& d);

/// Result of one verifier run: every finding of every pass, in program
/// traversal order, plus the structural facts the LLOV-compatible verdict
/// mapping needs (loop-shaped vs region-shaped parallelism).
struct Report {
  std::vector<Diagnostic> diagnostics;
  /// Structural flags with the verifier's traversal semantics: toplevel
  /// statements, descending sequential loops and conditionals.
  bool saw_parallel_loop = false;
  bool saw_parallel_region = false;
  std::size_t statements = 0;  ///< statements indexed

  bool has_errors() const;
  const Diagnostic* first_error() const;
  std::size_t count(PassId pass) const;
  std::size_t count(PassId pass, Severity severity) const;

  /// One line per pass: "mhp: 0 | scoping: 1 error, 1 note | ...".
  std::string summary() const;
  /// All diagnostics (one per line) followed by the summary line.
  std::string render() const;
};

}  // namespace hpcgpt::analysis
