#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hpcgpt::analysis {

/// The three composable passes of the static race verifier. The pass that
/// produced a finding is part of the diagnostic so downstream consumers
/// (the lint CLI, the datagen rationale text, the agreement eval) can
/// attribute and summarize findings per pass.
enum class PassId {
  Mhp,         ///< may-happen-in-parallel region/phase analysis
  Scoping,     ///< data-sharing & scoping clause lint
  Dependence,  ///< loop dependence testing on affine subscripts
};

/// Finding severity. Only `Error` findings are race verdicts; `Warning`
/// marks likely-but-unproven problems and `Note` records analysis facts
/// (skipped subscripts, refuted dependences, redundant clauses).
enum class Severity { Error, Warning, Note };

std::string pass_name(PassId pass);
std::string severity_name(Severity severity);

/// One structured finding. `stmts` are pre-order statement ids over the
/// analysed program (see StmtIndex); most findings carry the construct id
/// plus the ids of the conflicting accesses.
struct Diagnostic {
  PassId pass = PassId::Scoping;
  Severity severity = Severity::Error;
  std::string variable;      ///< the conflicting/misscoped variable
  std::vector<int> stmts;    ///< statement ids involved
  std::string message;       ///< human-readable explanation
};

/// Full field equality (including the message text).
bool operator==(const Diagnostic& a, const Diagnostic& b);

/// "[pass] severity: 'var' — message (stmts i,j)".
std::string to_string(const Diagnostic& d);

/// Stable structured identity of a finding: pass, severity, variable and
/// the statement span — the message text is excluded, so rewording a
/// diagnostic does not change its identity. This is the deduplication key
/// and the per-diagnostic fingerprint the analysis service reports.
std::uint64_t fingerprint(const Diagnostic& d);

/// Order- and content-sensitive hash over a whole report: every field of
/// every diagnostic (messages included) plus the structural flags. Two
/// reports fingerprint identically exactly when they are bitwise-equal —
/// the check the service's cached-vs-fresh tests assert.
struct Report;
std::uint64_t fingerprint(const Report& report);

/// Removes diagnostics whose identity fingerprint (pass + severity +
/// variable + statement span) already appeared earlier in the list,
/// keeping first occurrences in order. Because only later *identical-key*
/// findings are dropped, first_error() and has_errors() are unaffected —
/// verdicts (Table 5, llov_compat) cannot change. Returns the number of
/// diagnostics removed.
std::size_t deduplicate(std::vector<Diagnostic>& diagnostics);

/// Result of one verifier run: every finding of every pass, in program
/// traversal order, plus the structural facts the LLOV-compatible verdict
/// mapping needs (loop-shaped vs region-shaped parallelism).
struct Report {
  std::vector<Diagnostic> diagnostics;
  /// Structural flags with the verifier's traversal semantics: toplevel
  /// statements, descending sequential loops and conditionals.
  bool saw_parallel_loop = false;
  bool saw_parallel_region = false;
  std::size_t statements = 0;  ///< statements indexed

  bool has_errors() const;
  const Diagnostic* first_error() const;
  std::size_t count(PassId pass) const;
  std::size_t count(PassId pass, Severity severity) const;

  /// One line per pass: "mhp: 0 | scoping: 1 error, 1 note | ...".
  std::string summary() const;
  /// All diagnostics (one per line) followed by the summary line.
  std::string render() const;
};

}  // namespace hpcgpt::analysis
