#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hpcgpt/analysis/verifier.hpp"
#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/retrieval/vector_store.hpp"
#include "hpcgpt/support/thread_pool.hpp"

namespace hpcgpt::analysis {

/// The DRB category knowledge base: one chunk per DataRaceBench category
/// (Table 3), describing the pattern and why it does or does not race.
/// This is the grounding corpus behind the service's "detect + explain"
/// path — rationales are matched against it by TF-IDF cosine similarity,
/// so every explanation ships with the catalogue entries it is grounded
/// in (the RAG analogue of the paper's §5 LangChain route, applied to
/// Task 2).
const std::vector<std::string>& drb_category_kb();

/// Knobs of one VerificationService instance.
struct ServiceOptions {
  /// Analysis configuration shared by every request this service answers
  /// (part of the cache key — services with different options never
  /// share results, even behind the same fingerprints).
  VerifierOptions verifier;
  /// LRU bound on cached function reports. Oldest-used entries are
  /// evicted past this (analysis.cache.evictions counts them).
  std::size_t cache_capacity = 1024;
  /// Build the DRB category retriever so explain-mode responses carry
  /// grounding chunks. Off saves the embedder for metric-only workloads.
  bool ground_rationales = true;
  /// Grounding chunks attached per explained function.
  std::size_t grounding_top_k = 2;
  /// Cosine floor below which a KB chunk is considered unrelated.
  double grounding_min_score = 0.02;
  /// Fan-out pool for cache misses; nullptr = ThreadPool::global().
  ThreadPool* pool = nullptr;
};

/// One function of a translation unit, as source text (C- or
/// Fortran-flavoured mini-language; the service dispatches on syntax).
struct FunctionInput {
  std::string name;
  std::string source;
};

/// A verification request: one translation unit of one or more functions.
/// CI-style traffic re-submits the whole unit after every edit; the
/// service re-analyzes only the functions whose content hash changed.
struct VerifyRequest {
  std::string unit = "unit";
  std::vector<FunctionInput> functions;
  /// Detect + explain: attach the Task-2 rationale (rationale_text) and
  /// its DRB-KB grounding to every function report.
  bool explain = false;

  /// Whole-source convenience: one unit holding one function.
  static VerifyRequest single(std::string source, std::string name = "fn",
                              bool explain = false);
};

/// Per-function outcome. `report` is exactly what a direct verify() of
/// the function yields — cached and fresh results are bitwise-identical
/// (fingerprint(report) pins this down in tests).
struct FunctionReport {
  std::string name;
  std::uint64_t fingerprint = 0;  ///< AST content hash (cache identity)
  bool parsed = false;            ///< false: source outside the subset
  bool cache_hit = false;
  std::string parse_error;        ///< set when !parsed
  Report report;
  std::string rationale;               ///< explain mode only
  std::vector<std::string> grounding;  ///< explain mode: DRB KB chunks
  bool has_errors() const { return report.has_errors(); }
};

/// Response for one unit: per-function reports in request order plus the
/// request-level cache accounting.
struct VerifyResponse {
  std::string unit;
  /// False when the owning server was shutting down (the request was
  /// never analyzed) — the typed-rejection analogue of generation's
  /// FinishReason::Rejected.
  bool accepted = true;
  std::vector<FunctionReport> functions;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t parse_failures = 0;

  bool has_errors() const;
  /// "unit: 20 functions (19 cached), 3 with errors".
  std::string summary() const;
};

/// Analysis-as-a-service: the PR 1 static verifier behind an incremental,
/// cached, thread-safe request surface.
///
/// Each function of a request is content-addressed twice: first by a hash
/// of its raw source text (a warm re-submission skips parsing entirely),
/// then — after parsing — by the structural fingerprint of its AST, so
/// whitespace edits, renames and even C↔Fortran re-renderings of the same
/// program all resolve to one cached Report. Misses fan out across the
/// shared ThreadPool (per-function `analysis.function` spans parented
/// under the request's `analysis.verify` span via the PR 5 trace
/// context); hits are a hash + LRU touch + copy. The result cache is
/// LRU-bounded with `analysis.cache.{hits,misses,evictions}` counters in
/// the service's private registry.
///
/// Reports are deterministic, so a cached copy is bitwise-identical to a
/// fresh run — the property that makes serving cached verdicts sound.
/// verify() is safe to call from any number of threads concurrently.
class VerificationService {
 public:
  explicit VerificationService(ServiceOptions options = {});

  /// Analyzes one unit, serving per-function results from cache where
  /// content hashes match and analyzing the rest in parallel.
  VerifyResponse verify(const VerifyRequest& request);

  /// AST-level entry point (no parse): used by callers that already hold
  /// a Program (generators, tests). Shares the same cache.
  FunctionReport verify_program(const minilang::Program& program,
                                std::string name = "fn",
                                bool explain = false);

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
  };
  CacheStats cache_stats() const;
  void clear_cache();

  /// Private registry: analysis.requests, analysis.functions,
  /// analysis.cache.{hits,misses,evictions}, analysis.parse_failures,
  /// analysis.verify.seconds.
  const obs::MetricsRegistry& metrics() const { return registry_; }
  /// Mutable overload so a telemetry pipeline can attach to the service
  /// registry (the collector records its obs.collector.* self-metrics
  /// into the registry it samples).
  obs::MetricsRegistry& metrics() { return registry_; }
  std::string metrics_json() const { return registry_.snapshot_json(); }
  const ServiceOptions& options() const { return options_; }

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    Report report;
    bool explained = false;  ///< rationale/grounding computed yet?
    std::string rationale;
    std::vector<std::string> grounding;
    /// Source-text hashes aliased to this entry (typically the C and the
    /// Fortran rendering); unregistered from text_index_ on eviction.
    std::vector<std::uint64_t> text_hashes;
    std::list<std::uint64_t>::iterator lru;  ///< position in lru_
  };

  ThreadPool& pool() const;
  /// Cache lookup/analyze for one parsed function; `text_hash` != 0
  /// registers a text alias for parse-free warm hits.
  void process_program(const minilang::Program& program,
                       std::uint64_t text_hash, bool explain,
                       FunctionReport& out);
  /// Fills rationale + grounding on `out` from its report, reusing the
  /// entry's memoized copy when available (both are deterministic).
  void explain_report(std::uint64_t key, FunctionReport& out);
  void touch_locked(Entry& entry);
  void evict_locked();

  ServiceOptions options_;
  std::uint64_t options_hash_ = 0;  ///< VerifierOptions folded into keys
  obs::MetricsRegistry registry_;
  obs::Counter& requests_;
  obs::Counter& functions_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Counter& parse_failures_;
  obs::Counter& errors_found_;
  obs::Histogram& verify_seconds_;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> cache_;       // key → entry
  std::unordered_map<std::uint64_t, std::uint64_t> text_index_;  // text → key
  std::list<std::uint64_t> lru_;  ///< keys, most recently used first

  std::unique_ptr<retrieval::VectorStore> grounding_store_;
};

}  // namespace hpcgpt::analysis
