#pragma once

#include <cstdint>
#include <string>

#include "hpcgpt/minilang/ast.hpp"

namespace hpcgpt::analysis {

/// Affine subscript decomposition w.r.t. a loop variable:
/// index == scale*loop_var + offset. This is the canonical implementation;
/// hpcgpt::race::affine_in delegates here so the detectors and the
/// verifier can never disagree about which subscripts are analyzable.
struct AffineIndex {
  bool affine = false;
  std::int64_t scale = 0;
  std::int64_t offset = 0;
};

/// Tries to express `index` as scale*loop_var + offset with constant
/// coefficients. Any other shape (modulo, nested arrays, other variables,
/// thread ids) yields affine == false.
AffineIndex affine_in(const minilang::Expr& index,
                      const std::string& loop_var);

}  // namespace hpcgpt::analysis
