#pragma once

#include <string>

#include "hpcgpt/analysis/dependence.hpp"
#include "hpcgpt/analysis/diagnostic.hpp"
#include "hpcgpt/analysis/mhp.hpp"
#include "hpcgpt/analysis/scoping.hpp"
#include "hpcgpt/minilang/ast.hpp"

namespace hpcgpt::analysis {

/// Configuration of one verifier run. The default is the full-power
/// analyzer (all passes, all refinements); `llov_compat()` restricts it to
/// exactly the scope and precision of the original single-pass LLOV-style
/// detector so `race::LlovDetector` can delegate here without changing a
/// single Table 5 verdict.
struct VerifierOptions {
  /// Run the MHP pass over parallel regions. When off, regions are merely
  /// recorded (the LLOV verdict mapping turns "regions but no loops" into
  /// Unsupported, like the real tool's loop-verifier scope).
  bool verify_regions = true;
  /// Analyze parallel loops nested inside regions and other constructs.
  /// The compat traversal only sees loops at the top level or under
  /// sequential loops / conditionals.
  bool deep_traversal = true;
  /// Collect every finding of every construct. When off, the verifier
  /// reproduces the original detector's early exit: at most one error per
  /// loop, and analysis stops after the first toplevel statement that
  /// produced one.
  bool exhaustive = true;
  ScopingOptions scoping;
  DependenceOptions dependence;

  static VerifierOptions llov_compat();
};

/// Runs the three passes over `program` and collects every finding, in
/// program traversal order (per construct: scoping before dependence).
Report verify(const minilang::Program& program,
              const VerifierOptions& options = {});

/// One-sentence rationale for a Task-2 instruction record: the leading
/// error finding rendered as prose, or a "no conflicting accesses" line
/// for clean reports. Always non-empty.
std::string rationale_text(const Report& report);

}  // namespace hpcgpt::analysis
