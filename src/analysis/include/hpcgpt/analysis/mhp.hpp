#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "hpcgpt/analysis/diagnostic.hpp"
#include "hpcgpt/analysis/stmt_index.hpp"
#include "hpcgpt/minilang/ast.hpp"

namespace hpcgpt::analysis {

/// May-happen-in-parallel facts for one program.
///
/// Parallel regions are segmented at barriers exactly like the simulated
/// OpenMP runtime segments execution: a `barrier` statement ends a phase,
/// and a `single` construct ends one too (it carries an implicit barrier).
/// Two statements may run concurrently iff they live in the same parallel
/// construct and the same barrier phase; statements of a parallel loop
/// share one phase (iterations are concurrent). Serial statements are
/// never concurrent with anything.
struct MhpInfo {
  struct Placement {
    int construct = -1;  ///< statement id of the enclosing parallel
                         ///< construct (-1 = serial code)
    int phase = 0;       ///< barrier phase within the construct
    bool single_thread = false;  ///< inside master/single
  };

  std::unordered_map<int, Placement> placement;  ///< stmt id -> placement
  std::size_t parallel_constructs = 0;
  std::size_t phases = 0;  ///< total phases across all regions

  /// True when the two statements can execute concurrently on different
  /// threads. Unknown ids are treated as serial (never concurrent).
  bool may_happen_in_parallel(int stmt_a, int stmt_b) const;
};

/// Computes placements for every statement of the program.
MhpInfo compute_mhp(const minilang::Program& program, const StmtIndex& index);

/// Verifies the barrier-phase structure of every ParallelRegion: accesses
/// placed in the same phase by different threads are checked for
/// conflicting addresses (thread-id-offset and constant subscripts are
/// compared symbolically; anything else is a conservative warning).
/// Appends findings to `out`. Parallel *loops* are left to the scoping and
/// dependence passes.
void run_mhp_pass(const minilang::Program& program, const StmtIndex& index,
                  const MhpInfo& info, std::vector<Diagnostic>& out);

}  // namespace hpcgpt::analysis
