#pragma once

#include <vector>

#include "hpcgpt/analysis/access.hpp"
#include "hpcgpt/analysis/diagnostic.hpp"
#include "hpcgpt/minilang/ast.hpp"

namespace hpcgpt::analysis {

struct ScopingOptions {
  /// Emit the non-verdict lints (read-before-write privates, redundant
  /// firstprivate, overwritten reductions, unused clauses) in addition to
  /// the three race errors. Off in LLOV-compatibility mode.
  bool extended_lints = true;
};

/// Data-sharing & scoping lint for one parallel loop. The three Error
/// findings reproduce the original LLOV-style scalar analysis bit for bit
/// (same conditions, same order, same messages); everything else is
/// Warning/Note only.
void run_scoping_pass(const minilang::Stmt& loop, const LoopAccesses& accesses,
                      const StmtIndex& index, const ScopingOptions& options,
                      std::vector<Diagnostic>& out);

}  // namespace hpcgpt::analysis
