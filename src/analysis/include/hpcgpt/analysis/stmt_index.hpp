#pragma once

#include <unordered_map>
#include <vector>

#include "hpcgpt/minilang/ast.hpp"

namespace hpcgpt::analysis {

/// Stable pre-order numbering of every statement in a program. All passes
/// share one index so that statement ids in diagnostics are comparable
/// across passes and renderable by the lint CLI ("stmt #7").
class StmtIndex {
 public:
  static StmtIndex build(const minilang::Program& program);

  /// Id of a statement node; -1 when the node is not part of the indexed
  /// program (defensive — never expected in practice).
  int id_of(const minilang::Stmt* stmt) const;

  const minilang::Stmt* stmt_of(int id) const;
  std::size_t size() const { return order_.size(); }

 private:
  std::vector<const minilang::Stmt*> order_;
  std::unordered_map<const minilang::Stmt*, int> ids_;
};

}  // namespace hpcgpt::analysis
