#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "hpcgpt/nn/kv_cache.hpp"
#include "hpcgpt/nn/transformer.hpp"
#include "hpcgpt/text/tokenizer.hpp"

namespace hpcgpt::serve {

/// Radix-trie prompt/prefix cache over the paged KV pool (structural
/// cousin of the RediSearch trie: path-compressed nodes keyed by their
/// first token, here with fixed chunk granularity).
///
/// Keying: nodes live on page-slot boundaries — a node covers a token
/// span inside one KV page slot (`offset` .. `offset + tokens.size()`,
/// both ≤ kPageSize) plus one retained page id per layer whose rows are
/// valid through the span's end. A slot is usually one node, but inserts
/// that diverge mid-chunk *split* the node at the divergence point, so a
/// slot can hold a chain of nodes sharing the same page rows: prefix
/// node, then per-branch suffix nodes. Children are keyed by the first
/// token of the next span (the next slot when the node completes its
/// slot, the same slot otherwise), so lookup is O(prompt length) and
/// two prompts sharing only part of a chunk still both get prefix hits.
///
/// Sharing contract: lookup() returns page ids for the longest cached
/// prefix of a prompt; the caller adopts them into a fresh
/// nn::DecodeState (adopt_prefix retains them). A shared page is
/// immutable while shared — a stream appending into a partially-filled
/// adopted tail page forks it first (COW in DecodeState), so the cached
/// copy always keeps its prompt-only contents. insert() retains the
/// prompt pages of a freshly prefilled stream; the stream's own later
/// decode appends into its final partial page likewise fork.
///
/// Eviction: LRU over *leaf* nodes (interior nodes are reachable prefixes
/// of live leaves), under either the node budget or external pool
/// pressure (the scheduler calls evict_lru() until a reservation fits).
/// Releasing a node's pages only frees them once no stream shares them.
///
/// Not thread-safe by design: owned and driven by the scheduler thread.
class PrefixCache {
 public:
  /// The longest cached prefix of a prompt: `tokens` matched positions
  /// and, per layer, the ceil(tokens / kPageSize) pages covering them
  /// (final page possibly partial). pages stay valid until the next
  /// insert/evict — adopt them immediately.
  struct Match {
    std::size_t tokens = 0;
    std::vector<std::vector<std::uint32_t>> pages;  // [layer][chunk]
  };

  PrefixCache(std::shared_ptr<nn::KvPagePool> pool, std::size_t n_layers,
              std::size_t max_nodes);
  ~PrefixCache();

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  /// Longest cached prefix of `prompt`, capped at `max_tokens` (callers
  /// pass prompt.size() - 1 so a prefill always ingests at least one
  /// token and produces the first-token logits).
  Match lookup(std::span<const text::TokenId> prompt, std::size_t max_tokens);

  /// Publishes the prompt pages of a prefilled session (state.length() >=
  /// prompt.size()): descends existing spans, splits a node at a
  /// mid-chunk token mismatch (both the old and the new prompt keep their
  /// cached prefixes), and creates nodes (retaining the stream's pages)
  /// for the new tail. Stops quietly only when the node budget cannot be
  /// freed.
  void insert(std::span<const text::TokenId> prompt,
              const nn::DecodeState& state);

  /// Evicts the least-recently-used leaf, releasing its pages. False when
  /// the trie is empty.
  bool evict_lru() { return evict_lru_except(nullptr); }

  /// Drops every node (shutdown / tests).
  void clear();

  std::size_t node_count() const { return nodes_; }
  /// Page references currently held by the trie (n_layers per node).
  std::size_t pages_held() const { return pages_held_; }

 private:
  struct Node {
    std::vector<text::TokenId> tokens;   // this span's tokens
    /// Position of tokens[0] within the node's page slot; offset +
    /// tokens.size() <= kPageSize, with equality iff the node completes
    /// its slot (only then do children start a new slot).
    std::size_t offset = 0;
    std::vector<std::uint32_t> pages;    // one page per layer
    std::map<text::TokenId, std::unique_ptr<Node>> children;
    Node* parent = nullptr;
    std::uint64_t last_used = 0;
  };

  void touch(Node& node) { node.last_used = ++clock_; }
  /// Splits `node` at token position `at` (0 < at < tokens.size()): the
  /// node keeps the prefix span, a new child takes the suffix span and the
  /// original children; both retain the same per-layer pages.
  void split_node(Node& node, std::size_t at);
  void release_pages(Node& node);
  void destroy_subtree(Node& node);
  bool evict_lru_except(const Node* keep);

  std::shared_ptr<nn::KvPagePool> pool_;
  const std::size_t n_layers_;
  const std::size_t max_nodes_;
  Node root_;  // sentinel: no tokens, no pages
  std::size_t nodes_ = 0;
  std::size_t pages_held_ = 0;
  std::uint64_t clock_ = 0;
};

}  // namespace hpcgpt::serve
