#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hpcgpt/core/hpcgpt.hpp"

namespace hpcgpt::serve {

/// Server statistics.
struct ServerStats {
  std::size_t requests_served = 0;
  std::size_t max_queue_depth = 0;
};

/// The deployment stage of Figure 1: a multi-threaded in-process
/// inference server in front of one HPC-GPT model.
///
/// Requests are queued and answered asynchronously; because the
/// transformer's forward caches are not re-entrant, a mutex serializes
/// model access while the worker threads handle queuing, decoding and
/// response delivery (the standard single-accelerator serving shape).
/// submit() returns a future; shutdown() drains the queue.
class InferenceServer {
 public:
  InferenceServer(core::HpcGpt& model, std::size_t workers = 2);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a question; the future resolves to the generated answer.
  std::future<std::string> submit(std::string question);

  /// Stops accepting requests, finishes the queued ones, joins workers.
  void shutdown();

  ServerStats stats() const;

 private:
  struct Request {
    std::string question;
    std::promise<std::string> promise;
  };

  void worker_loop();

  core::HpcGpt& model_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<Request> queue_;
  std::vector<std::thread> workers_;
  std::mutex model_mutex_;
  ServerStats stats_;
  bool stopping_ = false;
};

}  // namespace hpcgpt::serve
