#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hpcgpt/analysis/service.hpp"
#include "hpcgpt/core/generation.hpp"
#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/nn/kv_cache.hpp"
#include "hpcgpt/nn/transformer.hpp"
#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/telemetry.hpp"
#include "hpcgpt/obs/trace.hpp"
#include "hpcgpt/retrieval/engine.hpp"
#include "hpcgpt/serve/prefix_cache.hpp"

namespace hpcgpt::serve {

/// Paged-KV sizing and prefix-cache knobs (one section of ServeConfig).
struct KvCacheConfig {
  /// Total page budget of the serving pool. 0 derives a budget that fits
  /// max_batch worst-case streams plus (when the prefix cache is on) one
  /// stream's worth of cached prefixes. Admission reserves pages per
  /// request; requests that can never fit the budget are shed with
  /// FinishReason::Rejected instead of aborting mid-decode.
  std::size_t page_budget = 0;
  /// Radix-trie prompt cache: prompts sharing a served prefix map its
  /// pages instead of re-prefilling (serve.prefix.* metrics).
  bool prefix_cache = true;
  /// Node budget of the trie (one node per KV page chunk); LRU leaves are
  /// evicted beyond it or under pool pressure.
  std::size_t prefix_cache_max_nodes = 1024;
};

/// Speculative-decoding knobs (one section of ServeConfig).
struct SpeculationConfig {
  /// Master switch: when true the server builds a draft model from
  /// `draft` and verifies its proposals with the target model.
  bool enabled = false;
  /// Tokens drafted per verify round (requests can override per-request
  /// via core::SpeculativeOptions).
  std::size_t draft_tokens = 4;
  /// Draft model spec. Must share the target's vocabulary (it reuses the
  /// target's tokenizer); typically core::spec_for(BaseModel::Llama).
  core::ModelOptions draft;
};

/// Serve-path retrieval augmentation (one section of ServeConfig): when
/// enabled, every generation request's prompt is augmented at submit time
/// with the top-k chunks the attached SearchEngine retrieves for it
/// (the paper's §5 RAG route, served). The engine is shared and read-only
/// here — index it before attaching; queries are const-thread-safe.
struct RagConfig {
  bool enabled = false;
  /// The indexed hybrid retrieval engine (required when enabled). Which
  /// query path runs — scan, indexed or hybrid — is the engine's own
  /// RetrievalConfig::engine; indexed is the default.
  std::shared_ptr<const retrieval::SearchEngine> engine;
  std::size_t top_k = 2;
  /// Hits below this score are dropped; a request whose hits all fall
  /// below it is served unaugmented (counted in serve.rag.skipped).
  double min_score = 0.05;
};

/// The one typed configuration surface of the inference server — serving
/// knobs, inference weight mode, paged-KV sizing, speculation and the
/// co-hosted verification service, consolidated from what used to be
/// ServerOptions plus ad-hoc CLI-side quantization. CLI `serve` flags map
/// 1:1 onto these fields (see README, "Server throughput knobs").
struct ServeConfig {
  /// Maximum number of requests decoded concurrently (continuous-batching
  /// lanes). One long generation occupies one lane; the others keep
  /// draining the queue.
  std::size_t max_batch = 2;
  /// Default generation budget per request (mirrors HpcGpt::ask's
  /// default). Requests can override it via GenerationRequest::
  /// max_new_tokens.
  std::size_t max_new_tokens = 48;
  /// When the scheduler goes idle→busy it may wait up to this long for
  /// the queue to reach max_batch before starting the first round, so a
  /// burst of near-simultaneous requests is decoded at full batch
  /// occupancy instead of trickling in one lane at a time. 0 (default)
  /// starts decoding immediately — lowest latency, lower aggregate
  /// throughput under bursts. Requests arriving mid-flight are still
  /// admitted every round regardless of this setting.
  double admission_window_seconds = 0.0;
  /// Inference weight storage applied to the served model at server
  /// construction (the load-then-quantize flow; Fp32 leaves the model as
  /// loaded). One-way, like HpcGpt::set_quant_mode.
  tensor::QuantMode quant = tensor::QuantMode::Fp32;
  /// Paged KV cache + prefix sharing.
  KvCacheConfig kv;
  /// Speculative decoding.
  SpeculationConfig speculation;
  /// Knobs of the co-hosted analysis service (cache capacity, verifier
  /// options, grounding) behind the typed verification request kind.
  analysis::ServiceOptions verification;
  /// Retrieval-augmented generation pre-stage.
  RagConfig rag;
  /// Live telemetry (one section of ServeConfig): when telemetry.enabled
  /// the server runs an obs::TelemetryPipeline over its private registry —
  /// collector ticks at telemetry.sample_interval_seconds, the SLO rules
  /// are re-evaluated each tick, and telemetry.metrics_port >= 0 exposes
  /// /metrics, /healthz, /snapshot and /history over HTTP (port 0 picks
  /// an ephemeral one; see InferenceServer::telemetry()->http_port()).
  /// default_telemetry() fills in the stock serving rule set.
  obs::TelemetryConfig telemetry;

  /// Throws InvalidArgument on inconsistent settings (zero lanes,
  /// speculation without draft tokens, a page budget too small for one
  /// stream — checked against the model at server construction).
  void validate() const;
};

/// The stock SLO rule set for a serving telemetry pipeline: a TTFT
/// latency burn-rate rule (p(> ttft_threshold_seconds) against a 95%
/// objective, 5 s fast / 30 s slow windows), a shed-ratio burn-rate rule
/// (shed vs completed against a 99% objective), and a queue-depth
/// threshold rule. Returned enabled but without an HTTP port — callers
/// set telemetry.metrics_port (0 = ephemeral) to expose it.
obs::TelemetryConfig default_telemetry(double ttft_threshold_seconds = 0.25);

/// Server statistics — a consistent snapshot view over the server's
/// metrics registry (the registry holds the live values; stats() samples
/// them under the server mutex so counters in one snapshot agree with
/// each other). Rejected/shed requests are not counted as served.
struct ServerStats {
  std::size_t requests_served = 0;
  std::size_t requests_rejected = 0;   ///< submitted after shutdown
  std::size_t requests_shed = 0;       ///< can never fit the page budget
  std::size_t requests_verified = 0;   ///< verification requests completed
  std::size_t verifications_rejected = 0;  ///< verify submits after shutdown
  std::size_t max_queue_depth = 0;
  std::size_t prompt_tokens = 0;       ///< tokens ingested via prefill
  std::size_t generated_tokens = 0;    ///< tokens emitted by decode steps
  std::size_t batch_rounds = 0;        ///< scheduler rounds with work
  std::size_t batch_occupancy_sum = 0; ///< Σ active streams per round
  std::size_t peak_batch = 0;          ///< max simultaneously active streams
  std::size_t prefix_hits = 0;         ///< admissions that reused a prefix
  std::size_t prefix_misses = 0;       ///< admissions that prefilled cold
  std::size_t prefix_tokens_reused = 0;  ///< prompt tokens not re-prefilled
  std::size_t speculative_drafted = 0;   ///< draft tokens proposed
  std::size_t speculative_accepted = 0;  ///< draft tokens verified + kept
  std::size_t rag_augmented = 0;  ///< requests whose prompt gained context
  std::size_t rag_skipped = 0;    ///< RAG-enabled requests left unaugmented
  std::size_t kv_pages_in_use = 0;     ///< pool pages live at snapshot
  double busy_seconds = 0.0;           ///< wall time in prefill/decode work
  double latency_seconds_sum = 0.0;    ///< Σ submit→completion per request
  /// Last SLO evaluation of the telemetry pipeline (overall Ok with no
  /// rules when telemetry is disabled). health.shed_hint is the signal an
  /// SLO-aware admission layer consumes.
  obs::HealthReport health;

  /// Aggregate decode throughput while the scheduler was busy.
  double tokens_per_second() const {
    return busy_seconds > 0.0
               ? static_cast<double>(generated_tokens) / busy_seconds
               : 0.0;
  }
  /// Mean number of streams sharing a decode round (batching efficiency).
  double mean_batch_occupancy() const {
    return batch_rounds > 0
               ? static_cast<double>(batch_occupancy_sum) /
                     static_cast<double>(batch_rounds)
               : 0.0;
  }
  /// Mean submit→completion latency per served request.
  double mean_latency_seconds() const {
    return requests_served > 0
               ? latency_seconds_sum / static_cast<double>(requests_served)
               : 0.0;
  }
  /// Fraction of admissions that mapped cached prefix pages.
  double prefix_cache_hit_rate() const {
    const std::size_t lookups = prefix_hits + prefix_misses;
    return lookups > 0
               ? static_cast<double>(prefix_hits) /
                     static_cast<double>(lookups)
               : 0.0;
  }
  /// Fraction of drafted tokens the target model accepted.
  double speculative_accept_rate() const {
    return speculative_drafted > 0
               ? static_cast<double>(speculative_accepted) /
                     static_cast<double>(speculative_drafted)
               : 0.0;
  }
};

/// The deployment stage of Figure 1: a continuous-batching in-process
/// inference server in front of one HPC-GPT model.
///
/// Instead of serializing whole requests behind a model mutex, a single
/// scheduler thread runs the batched inference engine: queued requests
/// are admitted into up to `max_batch` decode lanes, each with its own
/// paged KV session (nn::DecodeState) over one budget-capped
/// nn::KvPagePool. Admission tokenizes the prompt, reserves worst-case
/// pages (evicting cached prefixes under pressure, shedding requests
/// that can never fit), and maps any cached prefix of the prompt from
/// the radix-trie PrefixCache so only the unseen suffix is prefilled.
/// Fresh prompts are ingested through the GEMM prefill path and their
/// prompt pages published back into the trie; then every round advances
/// all live lanes by one token through a single decode_step_batch call,
/// so the weight matrices are streamed once per round instead of once
/// per lane. With speculation enabled, a small draft model proposes k
/// tokens per round and the target verifies them in one batched prefill,
/// emitting every accepted token at once (serve.spec.* metrics).
///
/// submit() takes a core::GenerationRequest and returns a future
/// core::GenerationResult carrying text, token counts, finish reason and
/// latency; shutdown() drains the queue, and submissions after shutdown
/// resolve (not throw) with FinishReason::Rejected. Every server owns a
/// private obs::MetricsRegistry — queue depth, admission latency, TTFT,
/// inter-token latency, per-round occupancy, prefix-cache hits, pages in
/// use — exported via metrics_json(); ServerStats is a thin snapshot
/// view over it.
class InferenceServer {
 public:
  InferenceServer(core::HpcGpt& model, std::size_t max_batch = 2);
  InferenceServer(core::HpcGpt& model, ServeConfig config);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a generation request. request.max_new_tokens == 0 uses the
  /// server default; request.id == 0 is replaced with a fresh server-
  /// assigned id (echoed in the result). After shutdown() — or when the
  /// request can never fit the KV page budget — the future resolves
  /// with FinishReason::Rejected rather than throwing: check
  /// GenerationResult::ok().
  std::future<core::GenerationResult> submit(core::GenerationRequest request);

  /// The second typed request kind: race verification, served alongside
  /// generation (the CI-style linting workload). The request is handed to
  /// the co-hosted analysis::VerificationService on the shared thread
  /// pool — it consumes no decode lane, so verification traffic and token
  /// generation overlap freely. After shutdown() the future resolves
  /// immediately with accepted == false (the typed-rejection contract of
  /// the generation path). A `serve.verify` span parents the service's
  /// `analysis.verify` span when tracing is armed at submit.
  std::future<analysis::VerifyResponse> submit(
      analysis::VerifyRequest request);

  /// The co-hosted analysis service (its registry carries the
  /// analysis.cache.{hits,misses,evictions} counters).
  const analysis::VerificationService& verifier() const { return verifier_; }

  /// Stops accepting requests, finishes the queued ones, joins the
  /// scheduler.
  void shutdown();

  /// The resolved configuration (derived page budget filled in).
  const ServeConfig& config() const { return config_; }

  /// The serving page pool (budget, occupancy — for tests/benches).
  const nn::KvPagePool& page_pool() const { return *pool_; }

  /// Consistent snapshot of the serving counters (view over metrics()).
  ServerStats stats() const;

  /// This server's private metric registry (live values).
  const obs::MetricsRegistry& metrics() const { return registry_; }

  /// The live telemetry pipeline, or nullptr when config.telemetry is
  /// disabled. Stays up through shutdown() — the exposition endpoints
  /// keep answering while the server drains — and is torn down with the
  /// server (before the registry it samples).
  const obs::TelemetryPipeline* telemetry() const { return telemetry_.get(); }

  /// True while any SLO rule is Breached — the load-shedding hint an
  /// admission layer polls before accepting new work. Always false when
  /// telemetry is disabled.
  bool shed_hint() const {
    return telemetry_ != nullptr && telemetry_->shed_hint();
  }

  /// JSON snapshot: {"server": <this server's registry>, "process":
  /// <obs::MetricsRegistry::global()>} — the substrate layers (tensor,
  /// nn) record into the process registry.
  std::string metrics_json() const;

 private:
  struct Request {
    core::GenerationRequest request;
    std::promise<core::GenerationResult> promise;
    std::chrono::steady_clock::time_point submitted;
    /// Request-scoped trace (global TraceSink enabled at submit): every
    /// span this request touches — queue wait, prefix lookup, prefill,
    /// each decode round — shares trace.trace_id and parents on
    /// trace.span_id (the "serve.request" root recorded at completion).
    /// Inactive when tracing was off at submit.
    obs::TraceContext trace;
    double submitted_seconds = 0.0;  ///< sink-epoch submit timestamp
  };

  /// One continuous-batching lane: an in-flight generation session.
  struct Stream {
    Request request;
    nn::DecodeState state;
    std::vector<text::TokenId> prompt;
    std::vector<text::TokenId> out;
    std::size_t budget = 0;      ///< resolved per-request token budget
    std::size_t spec_tokens = 0; ///< resolved draft tokens per round
    std::size_t prefix_tokens = 0;  ///< prompt positions adopted from cache
    text::TokenId next = -1;     ///< candidate token (greedy argmax)
    core::FinishReason finish = core::FinishReason::Eos;
    std::chrono::steady_clock::time_point last_token;
    bool prefilled = false;
    bool published = false;      ///< prompt pages inserted into the trie
    bool done = false;
    std::exception_ptr error;
    /// Draft-model session (speculation only, created lazily).
    std::unique_ptr<nn::DecodeState> draft;

    explicit Stream(Request req, nn::DecodeState s)
        : request(std::move(req)), state(std::move(s)) {}
  };

  /// Cached references into registry_ so the scheduler hot path never
  /// takes the registry lock (names resolve once, in the constructor).
  struct Metrics {
    obs::Counter& completed;        ///< serve.requests.completed
    obs::Counter& rejected;         ///< serve.requests.rejected
    obs::Counter& shed;             ///< serve.requests.shed
    obs::Counter& verified;         ///< serve.verify.completed
    obs::Counter& verify_rejected;  ///< serve.verify.rejected
    obs::Counter& prompt_tokens;    ///< serve.tokens.prompt
    obs::Counter& generated_tokens; ///< serve.tokens.generated
    obs::Counter& rounds;           ///< serve.rounds.count
    obs::Counter& occupancy_sum;    ///< serve.rounds.occupancy_sum
    obs::Counter& prefix_hits;      ///< serve.prefix.hits
    obs::Counter& prefix_misses;    ///< serve.prefix.misses
    obs::Counter& prefix_reused;    ///< serve.prefix.tokens_reused
    obs::Counter& spec_drafted;     ///< serve.spec.drafted
    obs::Counter& spec_accepted;    ///< serve.spec.accepted
    obs::Counter& rag_augmented;    ///< serve.rag.augmented
    obs::Counter& rag_skipped;      ///< serve.rag.skipped
    obs::Gauge& queue_depth;        ///< serve.queue.depth (max = peak)
    obs::Gauge& lanes;              ///< serve.batch.lanes (max = peak)
    obs::Gauge& weight_bytes;       ///< serve.model.weight_bytes
    obs::Gauge& kv_pages;           ///< serve.kv.pages_in_use (max = peak)
    obs::Histogram& admission_seconds;   ///< submit → lane admission
    obs::Histogram& ttft_seconds;        ///< submit → first token
    obs::Histogram& inter_token_seconds; ///< gap between emitted tokens
    obs::Histogram& round_seconds;       ///< per-round busy time
    obs::Histogram& round_occupancy;     ///< lanes per round
    obs::Histogram& request_latency_seconds;  ///< submit → completion

    explicit Metrics(obs::MetricsRegistry& r);
  };

  void scheduler_loop();
  /// Admission (scheduler thread, under mutex_): tokenizes the prompt,
  /// enforces token_limit, reserves worst-case pages (evicting cached
  /// prefixes under pressure) and maps any cached prefix. Returns the
  /// admitted stream, or nullptr when the request was resolved inline
  /// (context-limit / shed) — except that when the pages are merely busy
  /// and `can_wait` is true, `requeue` is set and `entry` is left intact
  /// so the scheduler can park it at the queue front.
  std::unique_ptr<Stream> admit(Request& entry, bool can_wait,
                                bool& requeue);
  /// Worst-case page reservation for a prompt of `prompt_tokens` with
  /// `spec_tokens` drafted per speculative round.
  std::size_t pages_needed(std::size_t prompt_tokens, std::size_t budget,
                           std::size_t spec_tokens) const;
  /// Runs the GEMM prefill for a freshly admitted stream over the
  /// non-cached suffix of its prompt, producing its first candidate
  /// token.
  void prefill_stream(Stream& stream);
  /// Commits the pending candidate token of a prefilled stream and marks
  /// it done when it hits EOS, the token budget or the context limit
  /// (recording which, as the stream's finish reason). Returns true when
  /// the stream still needs a decode step this round.
  bool emit_pending_token(Stream& stream);
  /// One draft-propose / target-verify round for a speculation-enabled
  /// stream: the draft model proposes up to stream.spec_tokens tokens,
  /// the target scores candidate + drafts in a single batched prefill,
  /// and every accepted token is emitted at once.
  void speculative_round(Stream& stream);
  void finish_stream(Stream& stream);
  /// Resolves a request inline (rejected / shed / context-limit) without
  /// occupying a lane.
  void resolve_without_running(Request entry, core::FinishReason finish);

  core::HpcGpt& model_;
  ServeConfig config_;
  obs::MetricsRegistry registry_;
  Metrics metrics_;
  analysis::VerificationService verifier_;
  /// The budget-capped serving pool every lane and the prefix cache draw
  /// from (shared_ptr: sessions keep it alive through teardown).
  std::shared_ptr<nn::KvPagePool> pool_;
  std::unique_ptr<PrefixCache> prefix_;  ///< scheduler-thread only
  /// Draft model for speculative decoding (speculation.enabled only).
  std::unique_ptr<core::HpcGpt> draft_;
  /// Live telemetry over registry_ (telemetry.enabled only). Declared
  /// after registry_ so it is destroyed first — the collector and HTTP
  /// threads never outlive the registry they sample.
  std::unique_ptr<obs::TelemetryPipeline> telemetry_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<Request> queue_;
  std::thread scheduler_;
  std::uint64_t next_id_ = 1;  ///< server-assigned request ids (under mutex_)
  bool stopping_ = false;
  /// Verification tasks dispatched to the pool and not yet resolved;
  /// shutdown() waits for this to reach zero (verify_idle_) so in-flight
  /// tasks never outlive the service they run on.
  std::size_t verify_inflight_ = 0;
  std::condition_variable verify_idle_;

  // Scheduler-thread state: the shared batched-decode scratch plus the
  // per-round lane gather buffers (reused so rounds stay allocation-free).
  nn::BatchScratch batch_scratch_;
  std::vector<Stream*> round_lanes_;
  std::vector<nn::DecodeState*> round_states_;
  std::vector<text::TokenId> round_tokens_;
  // Speculation scratch (scheduler thread): verify-round logits, draft
  // proposals and the token buffer used to sync the draft session.
  tensor::Matrix spec_logits_;
  std::vector<text::TokenId> spec_draft_;
  std::vector<text::TokenId> spec_sync_;
};

}  // namespace hpcgpt::serve
