#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hpcgpt/analysis/service.hpp"
#include "hpcgpt/core/generation.hpp"
#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/nn/transformer.hpp"
#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/trace.hpp"

namespace hpcgpt::serve {

/// Serving knobs (see README, "Server throughput knobs").
struct ServerOptions {
  /// Maximum number of requests decoded concurrently (continuous-batching
  /// lanes). One long generation occupies one lane; the others keep
  /// draining the queue.
  std::size_t max_batch = 2;
  /// Default generation budget per request (mirrors HpcGpt::ask's
  /// default). Requests can override it via GenerationRequest::
  /// max_new_tokens.
  std::size_t max_new_tokens = 48;
  /// When the scheduler goes idle→busy it may wait up to this long for
  /// the queue to reach max_batch before starting the first round, so a
  /// burst of near-simultaneous requests is decoded at full batch
  /// occupancy instead of trickling in one lane at a time. 0 (default)
  /// starts decoding immediately — lowest latency, lower aggregate
  /// throughput under bursts. Requests arriving mid-flight are still
  /// admitted every round regardless of this setting.
  double admission_window_seconds = 0.0;
  /// Knobs of the co-hosted analysis service (cache capacity, verifier
  /// options, grounding) behind the typed verification request kind.
  analysis::ServiceOptions verification;
};

/// Server statistics — a consistent snapshot view over the server's
/// metrics registry (the registry holds the live values; stats() samples
/// them under the server mutex so counters in one snapshot agree with
/// each other). Rejected requests are not counted as served.
struct ServerStats {
  std::size_t requests_served = 0;
  std::size_t requests_rejected = 0;   ///< submitted after shutdown
  std::size_t requests_verified = 0;   ///< verification requests completed
  std::size_t verifications_rejected = 0;  ///< verify submits after shutdown
  std::size_t max_queue_depth = 0;
  std::size_t prompt_tokens = 0;       ///< tokens ingested via prefill
  std::size_t generated_tokens = 0;    ///< tokens emitted by decode steps
  std::size_t batch_rounds = 0;        ///< scheduler rounds with work
  std::size_t batch_occupancy_sum = 0; ///< Σ active streams per round
  std::size_t peak_batch = 0;          ///< max simultaneously active streams
  double busy_seconds = 0.0;           ///< wall time in prefill/decode work
  double latency_seconds_sum = 0.0;    ///< Σ submit→completion per request

  /// Aggregate decode throughput while the scheduler was busy.
  double tokens_per_second() const {
    return busy_seconds > 0.0
               ? static_cast<double>(generated_tokens) / busy_seconds
               : 0.0;
  }
  /// Mean number of streams sharing a decode round (batching efficiency).
  double mean_batch_occupancy() const {
    return batch_rounds > 0
               ? static_cast<double>(batch_occupancy_sum) /
                     static_cast<double>(batch_rounds)
               : 0.0;
  }
  /// Mean submit→completion latency per served request.
  double mean_latency_seconds() const {
    return requests_served > 0
               ? latency_seconds_sum / static_cast<double>(requests_served)
               : 0.0;
  }
};

/// The deployment stage of Figure 1: a continuous-batching in-process
/// inference server in front of one HPC-GPT model.
///
/// Instead of serializing whole requests behind a model mutex, a single
/// scheduler thread runs the batched inference engine: queued requests
/// are admitted into up to `max_batch` decode lanes, each with its own
/// KV-cache session (nn::DecodeState). New prompts are ingested through
/// the GEMM prefill path; then every round advances all live lanes by
/// one token through a single decode_step_batch call, so the weight
/// matrices are streamed once per round instead of once per lane —
/// cross-request batching, the throughput win of continuous batching.
/// Finished streams retire and queued ones are admitted mid-flight, so
/// one long generation no longer blocks the queue. Weights are only
/// read during prefill/decode, which is what makes the per-lane
/// sessions safe without a model lock.
///
/// submit() takes a core::GenerationRequest and returns a future
/// core::GenerationResult carrying text, token counts, finish reason and
/// latency; shutdown() drains the queue, and submissions after shutdown
/// resolve (not throw) with FinishReason::Rejected. Every server owns a
/// private obs::MetricsRegistry — queue depth, admission latency, TTFT,
/// inter-token latency, per-round occupancy — exported via
/// metrics_json(); ServerStats is a thin snapshot view over it.
class InferenceServer {
 public:
  InferenceServer(core::HpcGpt& model, std::size_t max_batch = 2);
  InferenceServer(core::HpcGpt& model, ServerOptions options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a generation request. request.max_new_tokens == 0 uses the
  /// server default; request.id == 0 is replaced with a fresh server-
  /// assigned id (echoed in the result). After shutdown() the future
  /// resolves immediately with FinishReason::Rejected — check
  /// GenerationResult::ok().
  std::future<core::GenerationResult> submit(core::GenerationRequest request);

  /// The second typed request kind: race verification, served alongside
  /// generation (the CI-style linting workload). The request is handed to
  /// the co-hosted analysis::VerificationService on the shared thread
  /// pool — it consumes no decode lane, so verification traffic and token
  /// generation overlap freely. After shutdown() the future resolves
  /// immediately with accepted == false (the typed-rejection contract of
  /// the generation path). A `serve.verify` span parents the service's
  /// `analysis.verify` span when tracing is armed at submit.
  std::future<analysis::VerifyResponse> submit(
      analysis::VerifyRequest request);

  /// The co-hosted analysis service (its registry carries the
  /// analysis.cache.{hits,misses,evictions} counters).
  const analysis::VerificationService& verifier() const { return verifier_; }

  /// Deprecated string-only surface, kept for existing callers: forwards
  /// to the typed submit() and yields only the answer text. A rejected
  /// request (submit after shutdown) surfaces as an Error exception from
  /// future::get(), matching the old contract.
  [[deprecated("use submit(core::GenerationRequest)")]]
  std::future<std::string> submit(std::string question);

  /// Stops accepting requests, finishes the queued ones, joins the
  /// scheduler.
  void shutdown();

  /// Consistent snapshot of the serving counters (view over metrics()).
  ServerStats stats() const;

  /// This server's private metric registry (live values).
  const obs::MetricsRegistry& metrics() const { return registry_; }

  /// JSON snapshot: {"server": <this server's registry>, "process":
  /// <obs::MetricsRegistry::global()>} — the substrate layers (tensor,
  /// nn) record into the process registry.
  std::string metrics_json() const;

 private:
  struct Request {
    core::GenerationRequest request;
    std::promise<core::GenerationResult> promise;
    std::chrono::steady_clock::time_point submitted;
    /// Request-scoped trace (global TraceSink enabled at submit): every
    /// span this request touches — queue wait, prefill, each decode
    /// round — shares trace.trace_id and parents on trace.span_id (the
    /// "serve.request" root recorded at completion). Inactive when
    /// tracing was off at submit.
    obs::TraceContext trace;
    double submitted_seconds = 0.0;  ///< sink-epoch submit timestamp
  };

  /// One continuous-batching lane: an in-flight generation session.
  struct Stream {
    Request request;
    nn::DecodeState state;
    std::vector<text::TokenId> prompt;
    std::vector<text::TokenId> out;
    std::size_t budget = 0;      ///< resolved per-request token budget
    text::TokenId next = -1;     ///< candidate token (greedy argmax)
    core::FinishReason finish = core::FinishReason::Eos;
    std::chrono::steady_clock::time_point last_token;
    bool prefilled = false;
    bool done = false;
    std::exception_ptr error;

    explicit Stream(Request req, nn::DecodeState s)
        : request(std::move(req)), state(std::move(s)) {}
  };

  /// Cached references into registry_ so the scheduler hot path never
  /// takes the registry lock (names resolve once, in the constructor).
  struct Metrics {
    obs::Counter& completed;        ///< serve.requests.completed
    obs::Counter& rejected;         ///< serve.requests.rejected
    obs::Counter& verified;         ///< serve.verify.completed
    obs::Counter& verify_rejected;  ///< serve.verify.rejected
    obs::Counter& prompt_tokens;    ///< serve.tokens.prompt
    obs::Counter& generated_tokens; ///< serve.tokens.generated
    obs::Counter& rounds;           ///< serve.rounds.count
    obs::Counter& occupancy_sum;    ///< serve.rounds.occupancy_sum
    obs::Gauge& queue_depth;        ///< serve.queue.depth (max = peak)
    obs::Gauge& lanes;              ///< serve.batch.lanes (max = peak)
    obs::Gauge& weight_bytes;       ///< serve.model.weight_bytes
    obs::Histogram& admission_seconds;   ///< submit → lane admission
    obs::Histogram& ttft_seconds;        ///< submit → first token
    obs::Histogram& inter_token_seconds; ///< gap between emitted tokens
    obs::Histogram& round_seconds;       ///< per-round busy time
    obs::Histogram& round_occupancy;     ///< lanes per round
    obs::Histogram& request_latency_seconds;  ///< submit → completion

    explicit Metrics(obs::MetricsRegistry& r);
  };

  void scheduler_loop();
  /// Tokenizes the prompt and runs the GEMM prefill for a freshly
  /// admitted stream, producing its first candidate token. Enforces the
  /// request's token_limit (finish = ContextLimit, no text) before
  /// touching the model.
  void prefill_stream(Stream& stream);
  /// Commits the pending candidate token of a prefilled stream and marks
  /// it done when it hits EOS, the token budget or the context limit
  /// (recording which, as the stream's finish reason). Returns true when
  /// the stream still needs a decode step this round.
  bool emit_pending_token(Stream& stream);
  void finish_stream(Stream& stream);

  core::HpcGpt& model_;
  ServerOptions options_;
  obs::MetricsRegistry registry_;
  Metrics metrics_;
  analysis::VerificationService verifier_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<Request> queue_;
  std::thread scheduler_;
  std::uint64_t next_id_ = 1;  ///< server-assigned request ids (under mutex_)
  bool stopping_ = false;
  /// Verification tasks dispatched to the pool and not yet resolved;
  /// shutdown() waits for this to reach zero (verify_idle_) so in-flight
  /// tasks never outlive the service they run on.
  std::size_t verify_inflight_ = 0;
  std::condition_variable verify_idle_;

  // Scheduler-thread state: the shared batched-decode scratch plus the
  // per-round lane gather buffers (reused so rounds stay allocation-free).
  nn::BatchScratch batch_scratch_;
  std::vector<Stream*> round_lanes_;
  std::vector<nn::DecodeState*> round_states_;
  std::vector<text::TokenId> round_tokens_;
};

}  // namespace hpcgpt::serve
