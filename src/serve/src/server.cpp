#include "hpcgpt/serve/server.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <utility>

#include "hpcgpt/obs/trace.hpp"
#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/thread_pool.hpp"
#include "hpcgpt/support/timer.hpp"
#include "hpcgpt/text/tokenizer.hpp"

namespace hpcgpt::serve {

namespace {

text::TokenId argmax(std::span<const float> logits) {
  return static_cast<text::TokenId>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
}

double seconds_since(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t)
      .count();
}

// Lanes-per-round buckets: small integers, so each occupancy level gets
// its own bucket up to the plausible lane counts.
constexpr std::array<double, 8> kOccupancyBounds = {1, 2, 3, 4, 6, 8, 12, 16};

/// Records one request-scoped span (child of the request's root unless
/// `as_root`) into the global sink. Used for the phases whose lifetime
/// does not match a C++ scope on one thread — queue wait, the shared
/// decode round, and the submit→completion root itself.
void record_request_span(const char* name, double start_seconds,
                         double duration_seconds,
                         const obs::TraceContext& trace,
                         bool as_root = false) {
  obs::TraceEvent event;
  event.name = name;
  event.start_seconds = start_seconds;
  event.duration_seconds = duration_seconds;
  event.trace_id = trace.trace_id;
  event.span_id = as_root ? trace.span_id : obs::next_span_id();
  event.parent_id = as_root ? 0 : trace.span_id;
  obs::TraceSink::global().record(std::move(event));
}

}  // namespace

InferenceServer::Metrics::Metrics(obs::MetricsRegistry& r)
    : completed(r.counter("serve.requests.completed")),
      rejected(r.counter("serve.requests.rejected")),
      verified(r.counter("serve.verify.completed")),
      verify_rejected(r.counter("serve.verify.rejected")),
      prompt_tokens(r.counter("serve.tokens.prompt")),
      generated_tokens(r.counter("serve.tokens.generated")),
      rounds(r.counter("serve.rounds.count")),
      occupancy_sum(r.counter("serve.rounds.occupancy_sum")),
      queue_depth(r.gauge("serve.queue.depth")),
      lanes(r.gauge("serve.batch.lanes")),
      weight_bytes(r.gauge("serve.model.weight_bytes")),
      admission_seconds(r.histogram("serve.admission.seconds")),
      ttft_seconds(r.histogram("serve.ttft.seconds")),
      inter_token_seconds(r.histogram("serve.inter_token.seconds")),
      round_seconds(r.histogram("serve.round.seconds")),
      round_occupancy(r.histogram("serve.round.occupancy", kOccupancyBounds)),
      request_latency_seconds(r.histogram("serve.request.latency_seconds")) {}

InferenceServer::InferenceServer(core::HpcGpt& model, std::size_t max_batch)
    : InferenceServer(
          model, ServerOptions{.max_batch = std::max<std::size_t>(1, max_batch),
                               .max_new_tokens = 48}) {}

InferenceServer::InferenceServer(core::HpcGpt& model, ServerOptions options)
    : model_(model),
      options_(options),
      metrics_(registry_),
      verifier_(options_.verification) {
  options_.max_batch = std::max<std::size_t>(1, options_.max_batch);
  if (options_.max_new_tokens == 0) options_.max_new_tokens = 48;
  // Resident weight footprint of the served model (fp32 vs --quant'ed
  // int8/fp16) — a level, not a rate, so dashboards can plot the
  // quantization saving next to the throughput counters.
  metrics_.weight_bytes.set(
      static_cast<std::int64_t>(model_.model().weight_memory_bytes()));
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<core::GenerationResult> InferenceServer::submit(
    core::GenerationRequest request) {
  if (request.max_new_tokens == 0) {
    request.max_new_tokens = options_.max_new_tokens;
  }
  Request entry;
  entry.request = std::move(request);
  entry.submitted = std::chrono::steady_clock::now();
  {
    // Request-scoped tracing: decided once, at submit, so a request keeps
    // (or lacks) its trace consistently even if the sink toggles
    // mid-flight.
    obs::TraceSink& sink = obs::TraceSink::global();
    if (sink.enabled()) {
      entry.trace.trace_id = obs::next_trace_id();
      entry.trace.span_id = obs::next_span_id();
      entry.submitted_seconds = sink.now_seconds();
    }
  }
  std::future<core::GenerationResult> future = entry.promise.get_future();
  {
    std::lock_guard lock(mutex_);
    if (entry.request.id == 0) entry.request.id = next_id_++;
    if (stopping_) {
      // A request the scheduler will never see resolves (rather than
      // throws) with the typed rejection, and is counted.
      metrics_.rejected.add(1);
      core::GenerationResult rejected;
      rejected.id = entry.request.id;
      rejected.finish = core::FinishReason::Rejected;
      entry.promise.set_value(std::move(rejected));
      return future;
    }
    queue_.push_back(std::move(entry));
    metrics_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  }
  available_.notify_one();
  return future;
}

std::future<std::string> InferenceServer::submit(std::string question) {
  core::GenerationRequest request;
  request.prompt = std::move(question);
  std::future<core::GenerationResult> typed = submit(std::move(request));
  // Deferred adapter: get() on the returned future waits on the typed
  // future inline (no extra thread) and restores the legacy contract of
  // throwing on submit-after-shutdown.
  return std::async(std::launch::deferred,
                    [f = std::move(typed)]() mutable -> std::string {
                      core::GenerationResult result = f.get();
                      if (!result.ok()) {
                        throw Error("InferenceServer: submit after shutdown");
                      }
                      return std::move(result.text);
                    });
}

std::future<analysis::VerifyResponse> InferenceServer::submit(
    analysis::VerifyRequest request) {
  auto promise = std::make_shared<std::promise<analysis::VerifyResponse>>();
  std::future<analysis::VerifyResponse> future = promise->get_future();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      metrics_.verify_rejected.add(1);
      analysis::VerifyResponse rejected;
      rejected.unit = request.unit;
      rejected.accepted = false;
      promise->set_value(std::move(rejected));
      return future;
    }
    ++verify_inflight_;
  }
  // Capture the submitter's trace context so the pool-side serve.verify
  // span (and the service's analysis.verify under it) parents on
  // whatever span the caller had open at submit time.
  const obs::TraceContext trace = obs::current_trace_context();
  auto shared = std::make_shared<analysis::VerifyRequest>(std::move(request));
  ThreadPool::global().submit([this, promise, shared, trace] {
    HPCGPT_TRACE_ADOPT(trace);
    analysis::VerifyResponse response;
    {
      HPCGPT_TRACE("serve.verify");
      response = verifier_.verify(*shared);
    }
    {
      std::lock_guard lock(mutex_);
      metrics_.verified.add(1);
      --verify_inflight_;
      // Notify under the lock: once it is released a waiting shutdown()
      // may destroy the server, so `this` is not touched after the scope
      // ends (the promise is shared_ptr-owned and outlives the server).
      if (verify_inflight_ == 0) verify_idle_.notify_all();
    }
    promise->set_value(std::move(response));
  });
  return future;
}

void InferenceServer::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  available_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  // Verification tasks run on the shared pool, not the scheduler; wait
  // them out so none touches the service after shutdown returns (and the
  // destructor can safely tear the service down).
  std::unique_lock lock(mutex_);
  verify_idle_.wait(lock, [this] { return verify_inflight_ == 0; });
}

ServerStats InferenceServer::stats() const {
  // The registry values are individually atomic; the mutex makes the
  // *snapshot* consistent — every writer updates them under the same
  // lock, so counters in one ServerStats agree with each other.
  std::lock_guard lock(mutex_);
  ServerStats s;
  s.requests_served = metrics_.completed.value();
  s.requests_rejected = metrics_.rejected.value();
  s.requests_verified = metrics_.verified.value();
  s.verifications_rejected = metrics_.verify_rejected.value();
  s.max_queue_depth =
      static_cast<std::size_t>(metrics_.queue_depth.max_value());
  s.prompt_tokens = metrics_.prompt_tokens.value();
  s.generated_tokens = metrics_.generated_tokens.value();
  s.batch_rounds = metrics_.rounds.value();
  s.batch_occupancy_sum = metrics_.occupancy_sum.value();
  s.peak_batch = static_cast<std::size_t>(metrics_.lanes.max_value());
  s.busy_seconds = metrics_.round_seconds.sum();
  s.latency_seconds_sum = metrics_.request_latency_seconds.sum();
  return s;
}

std::string InferenceServer::metrics_json() const {
  json::Object root;
  root["server"] = registry_.snapshot();
  root["analysis"] = verifier_.metrics().snapshot();
  root["process"] = obs::MetricsRegistry::global().snapshot();
  return json::Value(std::move(root)).dump();
}

void InferenceServer::prefill_stream(Stream& stream) {
  // Prefill may run on a pool worker: adopt the request's trace context
  // so the span below (and the GEMM spans under it) parent on the
  // request root instead of whatever the worker was doing.
  HPCGPT_TRACE_ADOPT(stream.request.trace);
  HPCGPT_TRACE("serve.prefill");
  try {
    const core::GenerationRequest& req = stream.request.request;
    if (req.token_limit > 0 &&
        model_.question_prompt_tokens(req.prompt) > req.token_limit) {
      // Typed form of the old TooLong outcome: nothing is ingested, the
      // result carries ContextLimit and no text.
      stream.finish = core::FinishReason::ContextLimit;
      stream.done = true;
      return;
    }
    // Prompt ingestion: one batched GEMM pass writes the whole prompt's
    // K/V rows and yields the first candidate token.
    stream.prompt = model_.prompt_ids(req.prompt, stream.budget);
    stream.next = argmax(model_.model().prefill(stream.state, stream.prompt));
    stream.prefilled = true;
  } catch (...) {
    stream.error = std::current_exception();
    stream.done = true;
  }
}

bool InferenceServer::emit_pending_token(Stream& stream) {
  // Same stop conditions as nn::generate_cached, one token per round.
  if (stream.next == text::BpeTokenizer::kEos) {
    stream.finish = core::FinishReason::Eos;
    stream.done = true;
    return false;
  }
  if (stream.out.size() >= stream.budget) {
    stream.finish = core::FinishReason::Budget;
    stream.done = true;
    return false;
  }
  if (stream.state.length() >= model_.model().config().max_seq) {
    stream.finish = core::FinishReason::ContextLimit;
    stream.done = true;
    return false;
  }
  stream.out.push_back(stream.next);
  const auto now = std::chrono::steady_clock::now();
  if (stream.out.size() == 1) {
    metrics_.ttft_seconds.observe(seconds_since(stream.request.submitted));
  } else {
    metrics_.inter_token_seconds.observe(
        std::chrono::duration<double>(now - stream.last_token).count());
  }
  stream.last_token = now;
  if (stream.out.size() >= stream.budget) {
    stream.finish = core::FinishReason::Budget;
    stream.done = true;
    return false;
  }
  if (stream.state.length() >= model_.model().config().max_seq) {
    stream.finish = core::FinishReason::ContextLimit;
    stream.done = true;
    return false;
  }
  return true;
}

void InferenceServer::finish_stream(Stream& stream) {
  const double latency = seconds_since(stream.request.submitted);
  if (stream.request.trace.active()) {
    // Root span: the whole submit→completion lifetime; the queue /
    // prefill / decode-round spans all parent on this id.
    record_request_span(
        "serve.request", stream.request.submitted_seconds,
        obs::TraceSink::global().now_seconds() - stream.request.submitted_seconds,
        stream.request.trace, /*as_root=*/true);
  }
  core::GenerationResult result;
  result.id = stream.request.request.id;
  result.prompt_tokens = stream.prompt.size();
  result.generated_tokens = stream.out.size();
  result.finish = stream.finish;
  result.latency_seconds = latency;
  if (!stream.error) result.text = model_.tokenizer().decode(stream.out);
  // Stats first, promise second: a client that calls stats() right after
  // its future resolves must see its own request counted.
  {
    std::lock_guard lock(mutex_);
    metrics_.completed.add(1);
    metrics_.prompt_tokens.add(stream.prompt.size());
    metrics_.generated_tokens.add(stream.out.size());
    metrics_.request_latency_seconds.observe(latency);
  }
  if (stream.error) {
    stream.request.promise.set_exception(stream.error);
  } else {
    stream.request.promise.set_value(std::move(result));
  }
}

void InferenceServer::scheduler_loop() {
  std::vector<std::unique_ptr<Stream>> active;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      if (active.empty()) {
        available_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
        // Admission window: give a burst of arrivals a short chance to
        // fill the batch so the first rounds run at full occupancy.
        if (options_.admission_window_seconds > 0.0 && !stopping_) {
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(
                      options_.admission_window_seconds));
          available_.wait_until(lock, deadline, [this] {
            return stopping_ || queue_.size() >= options_.max_batch;
          });
        }
      }
      // Continuous batching: top the batch up from the queue every round,
      // not just when it empties.
      const auto now = std::chrono::steady_clock::now();
      while (!queue_.empty() && active.size() < options_.max_batch) {
        Request entry = std::move(queue_.front());
        queue_.pop_front();
        metrics_.admission_seconds.observe(
            std::chrono::duration<double>(now - entry.submitted).count());
        if (entry.trace.active()) {
          // Queue-wait span: submit → lane admission, child of the
          // request root.
          record_request_span(
              "serve.queue", entry.submitted_seconds,
              obs::TraceSink::global().now_seconds() - entry.submitted_seconds,
              entry.trace);
        }
        auto stream = std::make_unique<Stream>(std::move(entry),
                                               model_.model().new_decode_state());
        stream->budget = stream->request.request.max_new_tokens;
        active.push_back(std::move(stream));
      }
      metrics_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
      if (active.empty()) {
        if (stopping_) return;
        continue;
      }
      metrics_.lanes.set(static_cast<std::int64_t>(active.size()));
    }

    // One scheduler round: fresh lanes get their prompt ingested through
    // the GEMM prefill (independent sessions over read-only weights, so
    // they can run in parallel; GEMMs inside nest safely thanks to the
    // pool's run-inline-on-worker guard), then every live lane advances
    // one token through a single cross-request batched decode step.
    HPCGPT_TRACE("serve.round");
    Timer round_timer;
    parallel_for(
        0, active.size(),
        [&](std::size_t i) {
          if (!active[i]->prefilled && !active[i]->done) {
            prefill_stream(*active[i]);
          }
        },
        1);

    round_lanes_.clear();
    round_states_.clear();
    round_tokens_.clear();
    for (auto& stream : active) {
      if (stream->done || !emit_pending_token(*stream)) continue;
      round_lanes_.push_back(stream.get());
      round_states_.push_back(&stream->state);
      round_tokens_.push_back(stream->next);
    }
    if (!round_lanes_.empty()) {
      // The decode step is shared across lanes, so the same wall-clock
      // interval is recorded once per *traced* request — each request's
      // timeline stays complete on its own trace_id.
      bool any_traced = false;
      for (const Stream* lane : round_lanes_) {
        any_traced = any_traced || lane->request.trace.active();
      }
      const double decode_start =
          any_traced ? obs::TraceSink::global().now_seconds() : 0.0;
      try {
        const tensor::Matrix& logits = model_.model().decode_step_batch(
            round_states_, round_tokens_, batch_scratch_);
        for (std::size_t b = 0; b < round_lanes_.size(); ++b) {
          round_lanes_[b]->next = argmax(logits.row(b));
        }
      } catch (...) {
        // Batch-level failure (we pre-check per-lane preconditions, so
        // this is defensive): fail every lane that was in the batch.
        for (Stream* lane : round_lanes_) {
          lane->error = std::current_exception();
          lane->done = true;
        }
      }
      if (any_traced) {
        const double decode_dur =
            obs::TraceSink::global().now_seconds() - decode_start;
        for (const Stream* lane : round_lanes_) {
          if (lane->request.trace.active()) {
            record_request_span("serve.decode.round", decode_start,
                                decode_dur, lane->request.trace);
          }
        }
      }
    }
    const double round_seconds = round_timer.seconds();

    std::size_t retired = 0;
    for (auto& stream : active) {
      if (stream->done) {
        finish_stream(*stream);
        stream.reset();
        ++retired;
      }
    }
    if (retired > 0) {
      active.erase(std::remove(active.begin(), active.end(), nullptr),
                   active.end());
    }
    std::lock_guard lock(mutex_);
    metrics_.rounds.add(1);
    metrics_.occupancy_sum.add(active.size() + retired);
    metrics_.round_occupancy.observe(
        static_cast<double>(active.size() + retired));
    metrics_.round_seconds.observe(round_seconds);
  }
}

}  // namespace hpcgpt::serve
