#include "hpcgpt/serve/server.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <utility>

#include "hpcgpt/core/rag.hpp"
#include "hpcgpt/obs/trace.hpp"
#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/thread_pool.hpp"
#include "hpcgpt/support/timer.hpp"
#include "hpcgpt/text/tokenizer.hpp"

namespace hpcgpt::serve {

namespace {

text::TokenId argmax(std::span<const float> logits) {
  return static_cast<text::TokenId>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
}

double seconds_since(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t)
      .count();
}

// Lanes-per-round buckets: small integers, so each occupancy level gets
// its own bucket up to the plausible lane counts.
constexpr std::array<double, 8> kOccupancyBounds = {1, 2, 3, 4, 6, 8, 12, 16};

/// Records one request-scoped span (child of the request's root unless
/// `as_root`) into the global sink. Used for the phases whose lifetime
/// does not match a C++ scope on one thread — queue wait, the shared
/// decode round, and the submit→completion root itself.
void record_request_span(const char* name, double start_seconds,
                         double duration_seconds,
                         const obs::TraceContext& trace,
                         bool as_root = false) {
  obs::TraceEvent event;
  event.name = name;
  event.start_seconds = start_seconds;
  event.duration_seconds = duration_seconds;
  event.trace_id = trace.trace_id;
  event.span_id = as_root ? trace.span_id : obs::next_span_id();
  event.parent_id = as_root ? 0 : trace.span_id;
  obs::TraceSink::global().record(std::move(event));
}

}  // namespace

void ServeConfig::validate() const {
  require(max_batch >= 1, "ServeConfig: max_batch must be >= 1");
  require(max_new_tokens >= 1, "ServeConfig: max_new_tokens must be >= 1");
  require(admission_window_seconds >= 0.0,
          "ServeConfig: admission_window_seconds must be >= 0");
  if (speculation.enabled) {
    require(speculation.draft_tokens >= 1,
            "ServeConfig: speculation enabled with zero draft_tokens");
  }
  if (kv.prefix_cache) {
    require(kv.prefix_cache_max_nodes >= 1,
            "ServeConfig: prefix cache enabled with zero node budget");
  }
  if (rag.enabled) {
    require(rag.engine != nullptr,
            "ServeConfig: rag enabled without an attached SearchEngine");
    require(rag.top_k >= 1, "ServeConfig: rag enabled with top_k == 0");
  }
  if (telemetry.enabled) {
    // Rule definitions get their own typed validation when the pipeline
    // builds its SloMonitor; only the pipeline-level knobs are checked
    // here.
    require(std::isfinite(telemetry.sample_interval_seconds),
            "ServeConfig: telemetry.sample_interval_seconds must be finite");
    require(telemetry.metrics_port <= 65535,
            "ServeConfig: telemetry.metrics_port must be <= 65535");
  }
}

obs::TelemetryConfig default_telemetry(double ttft_threshold_seconds) {
  require(ttft_threshold_seconds > 0.0,
          "default_telemetry: ttft threshold must be > 0");
  obs::TelemetryConfig config;
  config.enabled = true;

  obs::LatencyBurnRule ttft;
  ttft.name = "slo.ttft";
  ttft.histogram = "serve.ttft.seconds";
  ttft.threshold_seconds = ttft_threshold_seconds;
  ttft.objective = 0.95;
  ttft.fast_window_seconds = 5.0;
  ttft.slow_window_seconds = 30.0;
  ttft.threshold = 1.0;
  config.latency_rules.push_back(std::move(ttft));

  obs::BurnRateRule shed;
  shed.name = "slo.shed";
  shed.bad_metric = "serve.requests.shed";
  shed.good_metric = "serve.requests.completed";
  shed.objective = 0.99;
  shed.fast_window_seconds = 5.0;
  shed.slow_window_seconds = 30.0;
  shed.threshold = 1.0;
  config.burn_rules.push_back(std::move(shed));

  obs::SloRule queue;
  queue.name = "slo.queue";
  queue.metric = "serve.queue.depth";
  queue.window_seconds = 10.0;
  queue.aggregation = obs::Aggregation::Max;
  queue.comparison = obs::Comparison::Above;
  queue.threshold = 256.0;
  queue.degraded_threshold = 128.0;
  config.rules.push_back(std::move(queue));
  return config;
}

InferenceServer::Metrics::Metrics(obs::MetricsRegistry& r)
    : completed(r.counter("serve.requests.completed")),
      rejected(r.counter("serve.requests.rejected")),
      shed(r.counter("serve.requests.shed")),
      verified(r.counter("serve.verify.completed")),
      verify_rejected(r.counter("serve.verify.rejected")),
      prompt_tokens(r.counter("serve.tokens.prompt")),
      generated_tokens(r.counter("serve.tokens.generated")),
      rounds(r.counter("serve.rounds.count")),
      occupancy_sum(r.counter("serve.rounds.occupancy_sum")),
      prefix_hits(r.counter("serve.prefix.hits")),
      prefix_misses(r.counter("serve.prefix.misses")),
      prefix_reused(r.counter("serve.prefix.tokens_reused")),
      spec_drafted(r.counter("serve.spec.drafted")),
      spec_accepted(r.counter("serve.spec.accepted")),
      rag_augmented(r.counter("serve.rag.augmented")),
      rag_skipped(r.counter("serve.rag.skipped")),
      queue_depth(r.gauge("serve.queue.depth")),
      lanes(r.gauge("serve.batch.lanes")),
      weight_bytes(r.gauge("serve.model.weight_bytes")),
      kv_pages(r.gauge("serve.kv.pages_in_use")),
      admission_seconds(r.histogram("serve.admission.seconds")),
      ttft_seconds(r.histogram("serve.ttft.seconds")),
      inter_token_seconds(r.histogram("serve.inter_token.seconds")),
      round_seconds(r.histogram("serve.round.seconds")),
      round_occupancy(r.histogram("serve.round.occupancy", kOccupancyBounds)),
      request_latency_seconds(r.histogram("serve.request.latency_seconds")) {}

InferenceServer::InferenceServer(core::HpcGpt& model, std::size_t max_batch)
    : InferenceServer(model, [max_batch] {
        ServeConfig config;
        config.max_batch = std::max<std::size_t>(1, max_batch);
        return config;
      }()) {}

InferenceServer::InferenceServer(core::HpcGpt& model, ServeConfig config)
    : model_(model),
      config_(std::move(config)),
      metrics_(registry_),
      verifier_(config_.verification) {
  if (config_.max_new_tokens == 0) config_.max_new_tokens = 48;
  config_.validate();

  // Load-then-quantize: the config owns the inference weight mode.
  if (config_.quant != tensor::QuantMode::Fp32 &&
      model_.quant_mode() != config_.quant) {
    require(model_.quant_mode() == tensor::QuantMode::Fp32,
            "ServeConfig: quant mode conflicts with an already-quantized "
            "model");
    model_.set_quant_mode(config_.quant);
  }
  config_.quant = model_.quant_mode();

  const nn::TransformerConfig& arch = model_.model().config();
  constexpr std::size_t kPage = nn::KvPagePool::kPageSize;
  // Worst-case pages of one stream, per layer: a full context plus one
  // page of copy-on-write headroom.
  const std::size_t stream_pages = (arch.max_seq + kPage - 1) / kPage + 1;
  if (config_.kv.page_budget == 0) {
    // Derived budget: max_batch worst-case streams, plus one stream's
    // worth of headroom for cached prefixes when the trie is on.
    const std::size_t streams =
        config_.max_batch + (config_.kv.prefix_cache ? 1 : 0);
    config_.kv.page_budget = streams * arch.n_layers * stream_pages;
  }
  require(config_.kv.page_budget >= arch.n_layers * 2,
          "ServeConfig: kv.page_budget too small for a single stream "
          "(need at least two pages per layer)");
  pool_ = std::make_shared<nn::KvPagePool>(arch.d_model,
                                           config_.kv.page_budget);
  if (config_.kv.prefix_cache) {
    prefix_ = std::make_unique<PrefixCache>(pool_, arch.n_layers,
                                            config_.kv.prefix_cache_max_nodes);
  }
  if (config_.speculation.enabled) {
    require(config_.speculation.draft.config.vocab_size == arch.vocab_size,
            "ServeConfig: draft model vocabulary must match the target");
    draft_ = std::make_unique<core::HpcGpt>(config_.speculation.draft,
                                            model_.tokenizer());
  }

  // Resident weight footprint of the served model (fp32 vs --quant'ed
  // int8/fp16) — a level, not a rate, so dashboards can plot the
  // quantization saving next to the throughput counters.
  metrics_.weight_bytes.set(
      static_cast<std::int64_t>(model_.model().weight_memory_bytes()));

  // Live telemetry over the private registry: collector + SLO monitor +
  // optional HTTP exposition. Started before the scheduler so the very
  // first decode rounds are already covered by history.
  if (config_.telemetry.enabled) {
    telemetry_ =
        std::make_unique<obs::TelemetryPipeline>(registry_, config_.telemetry);
    telemetry_->start();
  }
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<core::GenerationResult> InferenceServer::submit(
    core::GenerationRequest request) {
  if (request.max_new_tokens == 0) {
    request.max_new_tokens = config_.max_new_tokens;
  }
  // RAG pre-stage (caller thread, engine queries are const-thread-safe):
  // splice the retrieved context into the prompt before admission, so the
  // scheduler — and the prefix cache, which sees identical augmented
  // prompts for identical questions — treats it like any other request.
  bool rag_hit = false;
  bool rag_miss = false;
  if (config_.rag.enabled) {
    HPCGPT_TRACE("serve.rag");
    std::vector<retrieval::Hit> hits =
        config_.rag.engine->top_k(request.prompt, config_.rag.top_k);
    core::trim_context(hits, config_.rag.min_score);
    if (!hits.empty()) {
      request.prompt = core::rag_prompt(hits, request.prompt);
      rag_hit = true;
    } else {
      rag_miss = true;
    }
  }
  Request entry;
  entry.request = std::move(request);
  entry.submitted = std::chrono::steady_clock::now();
  {
    // Request-scoped tracing: decided once, at submit, so a request keeps
    // (or lacks) its trace consistently even if the sink toggles
    // mid-flight.
    obs::TraceSink& sink = obs::TraceSink::global();
    if (sink.enabled()) {
      entry.trace.trace_id = obs::next_trace_id();
      entry.trace.span_id = obs::next_span_id();
      entry.submitted_seconds = sink.now_seconds();
    }
  }
  std::future<core::GenerationResult> future = entry.promise.get_future();
  {
    std::lock_guard lock(mutex_);
    if (rag_hit) metrics_.rag_augmented.add(1);
    if (rag_miss) metrics_.rag_skipped.add(1);
    if (entry.request.id == 0) entry.request.id = next_id_++;
    if (stopping_) {
      // A request the scheduler will never see resolves (rather than
      // throws) with the typed rejection, and is counted.
      metrics_.rejected.add(1);
      core::GenerationResult rejected;
      rejected.id = entry.request.id;
      rejected.finish = core::FinishReason::Rejected;
      entry.promise.set_value(std::move(rejected));
      return future;
    }
    queue_.push_back(std::move(entry));
    metrics_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  }
  available_.notify_one();
  return future;
}

std::future<analysis::VerifyResponse> InferenceServer::submit(
    analysis::VerifyRequest request) {
  auto promise = std::make_shared<std::promise<analysis::VerifyResponse>>();
  std::future<analysis::VerifyResponse> future = promise->get_future();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      metrics_.verify_rejected.add(1);
      analysis::VerifyResponse rejected;
      rejected.unit = request.unit;
      rejected.accepted = false;
      promise->set_value(std::move(rejected));
      return future;
    }
    ++verify_inflight_;
  }
  // Capture the submitter's trace context so the pool-side serve.verify
  // span (and the service's analysis.verify under it) parents on
  // whatever span the caller had open at submit time.
  const obs::TraceContext trace = obs::current_trace_context();
  auto shared = std::make_shared<analysis::VerifyRequest>(std::move(request));
  ThreadPool::global().submit([this, promise, shared, trace] {
    HPCGPT_TRACE_ADOPT(trace);
    analysis::VerifyResponse response;
    {
      HPCGPT_TRACE("serve.verify");
      response = verifier_.verify(*shared);
    }
    {
      std::lock_guard lock(mutex_);
      metrics_.verified.add(1);
      --verify_inflight_;
      // Notify under the lock: once it is released a waiting shutdown()
      // may destroy the server, so `this` is not touched after the scope
      // ends (the promise is shared_ptr-owned and outlives the server).
      if (verify_inflight_ == 0) verify_idle_.notify_all();
    }
    promise->set_value(std::move(response));
  });
  return future;
}

void InferenceServer::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  available_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  // Verification tasks run on the shared pool, not the scheduler; wait
  // them out so none touches the service after shutdown returns (and the
  // destructor can safely tear the service down).
  std::unique_lock lock(mutex_);
  verify_idle_.wait(lock, [this] { return verify_inflight_ == 0; });
}

ServerStats InferenceServer::stats() const {
  // The registry values are individually atomic; the mutex makes the
  // *snapshot* consistent — every writer updates them under the same
  // lock, so counters in one ServerStats agree with each other.
  std::lock_guard lock(mutex_);
  ServerStats s;
  s.requests_served = metrics_.completed.value();
  s.requests_rejected = metrics_.rejected.value();
  s.requests_shed = metrics_.shed.value();
  s.requests_verified = metrics_.verified.value();
  s.verifications_rejected = metrics_.verify_rejected.value();
  s.max_queue_depth =
      static_cast<std::size_t>(metrics_.queue_depth.max_value());
  s.prompt_tokens = metrics_.prompt_tokens.value();
  s.generated_tokens = metrics_.generated_tokens.value();
  s.batch_rounds = metrics_.rounds.value();
  s.batch_occupancy_sum = metrics_.occupancy_sum.value();
  s.peak_batch = static_cast<std::size_t>(metrics_.lanes.max_value());
  s.prefix_hits = metrics_.prefix_hits.value();
  s.prefix_misses = metrics_.prefix_misses.value();
  s.prefix_tokens_reused = metrics_.prefix_reused.value();
  s.speculative_drafted = metrics_.spec_drafted.value();
  s.speculative_accepted = metrics_.spec_accepted.value();
  s.rag_augmented = metrics_.rag_augmented.value();
  s.rag_skipped = metrics_.rag_skipped.value();
  s.kv_pages_in_use = pool_->pages_in_use();
  s.busy_seconds = metrics_.round_seconds.sum();
  s.latency_seconds_sum = metrics_.request_latency_seconds.sum();
  // The pipeline has its own lock; it never takes mutex_, so sampling its
  // report here cannot deadlock.
  if (telemetry_ != nullptr) s.health = telemetry_->health();
  return s;
}

std::string InferenceServer::metrics_json() const {
  json::Object root;
  root["server"] = registry_.snapshot();
  root["analysis"] = verifier_.metrics().snapshot();
  root["process"] = obs::MetricsRegistry::global().snapshot();
  return json::Value(std::move(root)).dump();
}

std::size_t InferenceServer::pages_needed(std::size_t prompt_tokens,
                                          std::size_t budget,
                                          std::size_t spec_tokens) const {
  const nn::TransformerConfig& arch = model_.model().config();
  constexpr std::size_t kPage = nn::KvPagePool::kPageSize;
  // Longest sequence this stream can ever hold: prompt + generation
  // budget + one speculative verify window (candidate + drafts), clamped
  // by the context. One extra page per layer of copy-on-write headroom.
  std::size_t worst = prompt_tokens + budget;
  if (spec_tokens > 0) worst += spec_tokens + 1;
  worst = std::min(worst, arch.max_seq);
  const std::size_t per_layer = (worst + kPage - 1) / kPage + 1;
  return arch.n_layers * per_layer;
}

void InferenceServer::resolve_without_running(Request entry,
                                              core::FinishReason finish) {
  const double latency = seconds_since(entry.submitted);
  if (entry.trace.active()) {
    record_request_span(
        "serve.request", entry.submitted_seconds,
        obs::TraceSink::global().now_seconds() - entry.submitted_seconds,
        entry.trace, /*as_root=*/true);
  }
  if (finish == core::FinishReason::Rejected) {
    metrics_.shed.add(1);
  } else {
    // Context-limit outcomes are served (typed result, no text), matching
    // the old prefill-side check.
    metrics_.completed.add(1);
    metrics_.request_latency_seconds.observe(latency);
  }
  core::GenerationResult result;
  result.id = entry.request.id;
  result.finish = finish;
  result.latency_seconds = latency;
  entry.promise.set_value(std::move(result));
}

std::unique_ptr<InferenceServer::Stream> InferenceServer::admit(
    Request& entry, bool can_wait, bool& requeue) {
  requeue = false;
  const core::GenerationRequest& req = entry.request;
  if (req.token_limit > 0 &&
      model_.question_prompt_tokens(req.prompt) > req.token_limit) {
    // Typed form of the old TooLong outcome: nothing is ingested, the
    // result carries ContextLimit and no text.
    resolve_without_running(std::move(entry), core::FinishReason::ContextLimit);
    return nullptr;
  }
  const std::size_t budget = req.max_new_tokens;
  std::size_t spec_tokens = 0;
  if (draft_) {
    spec_tokens = req.speculative.draft_tokens < 0
                      ? config_.speculation.draft_tokens
                      : static_cast<std::size_t>(req.speculative.draft_tokens);
  }
  std::vector<text::TokenId> prompt = model_.prompt_ids(req.prompt, budget);
  const std::size_t need = pages_needed(prompt.size(), budget, spec_tokens);
  if (need > pool_->capacity()) {
    // Can never fit the page budget: shed with the typed rejection
    // instead of admitting a stream doomed to exhaust the pool.
    resolve_without_running(std::move(entry), core::FinishReason::Rejected);
    return nullptr;
  }
  bool reserved = pool_->try_reserve(need);
  // Under pressure the prefix cache gives its pages back, oldest first.
  while (!reserved && prefix_ && prefix_->evict_lru()) {
    reserved = pool_->try_reserve(need);
  }
  if (!reserved) {
    if (can_wait) {
      // Pages are held by in-flight streams; retiring lanes will free
      // them, so park the request at the queue front.
      requeue = true;
      return nullptr;
    }
    // No lane is active, so nothing will retire: the pages are gone for
    // good (leaked references) — shed rather than spin.
    resolve_without_running(std::move(entry), core::FinishReason::Rejected);
    return nullptr;
  }

  auto stream = std::make_unique<Stream>(
      std::move(entry), model_.model().new_decode_state(pool_));
  stream->state.set_reserved_pages(need);
  stream->budget = budget;
  stream->spec_tokens = spec_tokens;
  stream->prompt = std::move(prompt);
  if (prefix_ && stream->request.request.cache.reuse_prefix) {
    HPCGPT_TRACE_ADOPT(stream->request.trace);
    HPCGPT_TRACE("serve.prefix_lookup");
    // Cap at size-1 so a fully-cached prompt still prefills its final
    // token (prefill produces the first-token logits).
    PrefixCache::Match match =
        prefix_->lookup(stream->prompt, stream->prompt.size() - 1);
    if (match.tokens > 0) {
      stream->state.adopt_prefix(match.pages, match.tokens);
      stream->prefix_tokens = match.tokens;
      metrics_.prefix_hits.add(1);
      metrics_.prefix_reused.add(match.tokens);
    } else {
      metrics_.prefix_misses.add(1);
    }
  }
  return stream;
}

void InferenceServer::prefill_stream(Stream& stream) {
  // Prefill may run on a pool worker: adopt the request's trace context
  // so the span below (and the GEMM spans under it) parent on the
  // request root instead of whatever the worker was doing.
  HPCGPT_TRACE_ADOPT(stream.request.trace);
  HPCGPT_TRACE("serve.prefill");
  try {
    // Prompt ingestion: one batched GEMM pass writes the K/V rows of the
    // non-cached suffix (state.length() positions were adopted from the
    // prefix cache) and yields the first candidate token.
    const std::span<const text::TokenId> ids(stream.prompt);
    stream.next = argmax(
        model_.model().prefill(stream.state, ids.subspan(stream.state.length())));
    stream.prefilled = true;
  } catch (...) {
    stream.error = std::current_exception();
    stream.done = true;
  }
}

bool InferenceServer::emit_pending_token(Stream& stream) {
  // Same stop conditions as nn::generate_cached, one token per round.
  if (stream.next == text::BpeTokenizer::kEos) {
    stream.finish = core::FinishReason::Eos;
    stream.done = true;
    return false;
  }
  if (stream.out.size() >= stream.budget) {
    stream.finish = core::FinishReason::Budget;
    stream.done = true;
    return false;
  }
  if (stream.state.length() >= model_.model().config().max_seq) {
    stream.finish = core::FinishReason::ContextLimit;
    stream.done = true;
    return false;
  }
  stream.out.push_back(stream.next);
  const auto now = std::chrono::steady_clock::now();
  if (stream.out.size() == 1) {
    metrics_.ttft_seconds.observe(seconds_since(stream.request.submitted));
  } else {
    metrics_.inter_token_seconds.observe(
        std::chrono::duration<double>(now - stream.last_token).count());
  }
  stream.last_token = now;
  if (stream.out.size() >= stream.budget) {
    stream.finish = core::FinishReason::Budget;
    stream.done = true;
    return false;
  }
  if (stream.state.length() >= model_.model().config().max_seq) {
    stream.finish = core::FinishReason::ContextLimit;
    stream.done = true;
    return false;
  }
  return true;
}

void InferenceServer::speculative_round(Stream& stream) {
  HPCGPT_TRACE_ADOPT(stream.request.trace);
  HPCGPT_TRACE("serve.spec.round");
  try {
    const nn::TransformerConfig& arch = model_.model().config();
    const nn::TransformerConfig& darch = draft_->model().config();
    const std::size_t prompt_len = stream.prompt.size();
    const std::size_t out_pre = stream.out.size();
    // Invariant at this point: the target has ingested prompt + out[:-1]
    // and out.back() is the next token to feed.
    const std::size_t target_len = stream.state.length();
    // Tokens the draft session must contain before proposing.
    const std::size_t draft_base = prompt_len + out_pre - 1;

    std::size_t k = stream.spec_tokens;
    // Clamp: the verify prefill ingests candidate + k drafts into the
    // target, the proposer ingests candidate + k-1 drafts into the draft,
    // and at most budget - out_pre more tokens can be emitted.
    k = std::min(k, arch.max_seq - std::min(arch.max_seq, target_len + 1));
    k = std::min(k, stream.budget - out_pre);
    if (darch.max_seq < draft_base + k) {
      k = darch.max_seq > draft_base ? darch.max_seq - draft_base : 0;
    }
    if (k == 0) {
      // No room to speculate this round: plain single-token decode.
      stream.next =
          argmax(model_.model().decode_step(stream.state, stream.out.back()));
      return;
    }

    // Sync the draft session to prompt + out[:-1]. Rollback keeps the
    // prefix consistent across rounds (rejected drafts are truncated
    // away; accepted ones match what the draft already ingested).
    nn::DecodeState& draft_state = *stream.draft;
    if (draft_state.length() > draft_base) draft_state.truncate(draft_base);
    if (draft_state.length() < draft_base) {
      spec_sync_.clear();
      for (std::size_t i = draft_state.length(); i < draft_base; ++i) {
        spec_sync_.push_back(i < prompt_len ? stream.prompt[i]
                                            : stream.out[i - prompt_len]);
      }
      draft_->model().prefill(draft_state, spec_sync_);
    }

    // Draft proposes d1..dk autoregressively (GEMV steps on the small
    // model — the cheap half of the protocol).
    spec_draft_.clear();
    text::TokenId cand = stream.out.back();
    for (std::size_t j = 0; j < k; ++j) {
      cand = argmax(draft_->model().decode_step(draft_state, cand));
      spec_draft_.push_back(cand);
    }

    // Target verifies candidate + drafts in ONE batched prefill: row i
    // holds the target's logits after ingesting spec tokens 0..i, so
    // greedy(row i) is what the target would have decoded there.
    spec_sync_.clear();
    spec_sync_.push_back(stream.out.back());
    spec_sync_.insert(spec_sync_.end(), spec_draft_.begin(), spec_draft_.end());
    model_.model().prefill_logits(stream.state, spec_sync_, spec_logits_);
    std::size_t accepted = 0;
    while (accepted < k &&
           spec_draft_[accepted] == argmax(spec_logits_.row(accepted))) {
      ++accepted;
    }
    const text::TokenId next_cand = argmax(spec_logits_.row(accepted));
    {
      std::lock_guard lock(mutex_);
      metrics_.spec_drafted.add(k);
      metrics_.spec_accepted.add(accepted);
    }

    // Roll the target back to exactly the accepted sequence, then emit
    // the accepted tokens (EOS/budget/context checks per token).
    stream.state.truncate(prompt_len + out_pre + accepted);
    for (std::size_t i = 0; i < accepted; ++i) {
      stream.next = spec_draft_[i];
      if (!emit_pending_token(stream)) return;
    }
    stream.next = next_cand;
  } catch (...) {
    stream.error = std::current_exception();
    stream.done = true;
  }
}

void InferenceServer::finish_stream(Stream& stream) {
  const double latency = seconds_since(stream.request.submitted);
  if (stream.request.trace.active()) {
    // Root span: the whole submit→completion lifetime; the queue /
    // prefill / decode-round spans all parent on this id.
    record_request_span(
        "serve.request", stream.request.submitted_seconds,
        obs::TraceSink::global().now_seconds() - stream.request.submitted_seconds,
        stream.request.trace, /*as_root=*/true);
  }
  core::GenerationResult result;
  result.id = stream.request.request.id;
  result.prompt_tokens = stream.prompt.size();
  result.generated_tokens = stream.out.size();
  result.finish = stream.finish;
  result.latency_seconds = latency;
  if (!stream.error) result.text = model_.tokenizer().decode(stream.out);
  // Stats first, promise second: a client that calls stats() right after
  // its future resolves must see its own request counted.
  {
    std::lock_guard lock(mutex_);
    metrics_.completed.add(1);
    metrics_.prompt_tokens.add(stream.prompt.size());
    metrics_.generated_tokens.add(stream.out.size());
    metrics_.request_latency_seconds.observe(latency);
  }
  if (stream.error) {
    stream.request.promise.set_exception(stream.error);
  } else {
    stream.request.promise.set_value(std::move(result));
  }
}

void InferenceServer::scheduler_loop() {
  std::vector<std::unique_ptr<Stream>> active;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      if (active.empty()) {
        available_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
        // Admission window: give a burst of arrivals a short chance to
        // fill the batch so the first rounds run at full occupancy.
        if (config_.admission_window_seconds > 0.0 && !stopping_) {
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(
                      config_.admission_window_seconds));
          available_.wait_until(lock, deadline, [this] {
            return stopping_ || queue_.size() >= config_.max_batch;
          });
        }
      }
      // Continuous batching: top the batch up from the queue every round,
      // not just when it empties. Admission tokenizes, reserves pages and
      // maps cached prefixes; a request whose pages are busy parks at the
      // queue front until a lane retires.
      const auto now = std::chrono::steady_clock::now();
      while (!queue_.empty() && active.size() < config_.max_batch) {
        Request entry = std::move(queue_.front());
        queue_.pop_front();
        bool requeue = false;
        std::unique_ptr<Stream> stream =
            admit(entry, /*can_wait=*/!active.empty(), requeue);
        if (requeue) {
          queue_.push_front(std::move(entry));
          break;
        }
        if (!stream) continue;  // resolved inline (shed / context-limit)
        metrics_.admission_seconds.observe(
            std::chrono::duration<double>(now - stream->request.submitted)
                .count());
        if (stream->request.trace.active()) {
          // Queue-wait span: submit → lane admission, child of the
          // request root.
          record_request_span("serve.queue", stream->request.submitted_seconds,
                              obs::TraceSink::global().now_seconds() -
                                  stream->request.submitted_seconds,
                              stream->request.trace);
        }
        if (draft_ && stream->spec_tokens > 0) {
          stream->draft = std::make_unique<nn::DecodeState>(
              draft_->model().new_decode_state());
        }
        active.push_back(std::move(stream));
      }
      metrics_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
      if (active.empty()) {
        if (stopping_) return;
        continue;
      }
      metrics_.lanes.set(static_cast<std::int64_t>(active.size()));
    }

    // One scheduler round: fresh lanes get their prompt ingested through
    // the GEMM prefill (independent sessions over read-only weights, so
    // they can run in parallel; GEMMs inside nest safely thanks to the
    // pool's run-inline-on-worker guard), then every live lane advances
    // one token through a single cross-request batched decode step.
    HPCGPT_TRACE("serve.round");
    Timer round_timer;
    parallel_for(
        0, active.size(),
        [&](std::size_t i) {
          if (!active[i]->prefilled && !active[i]->done) {
            prefill_stream(*active[i]);
          }
        },
        1);

    // Publish freshly prefilled prompts into the prefix cache (scheduler
    // thread only — the trie is not thread-safe). At this point the
    // stream has ingested exactly its prompt, so the retained pages hold
    // prompt-only K/V; the stream's own decode appends fork the shared
    // tail page (COW) rather than mutate it.
    if (prefix_) {
      for (auto& stream : active) {
        if (stream->prefilled && !stream->published) {
          stream->published = true;
          if (stream->request.request.cache.share_prefix && !stream->error) {
            prefix_->insert(stream->prompt, stream->state);
          }
        }
      }
    }

    round_lanes_.clear();
    round_states_.clear();
    round_tokens_.clear();
    for (auto& stream : active) {
      if (stream->done || !emit_pending_token(*stream)) continue;
      if (draft_ && stream->spec_tokens > 0) {
        // Speculative lanes run the draft/verify protocol sequentially on
        // the scheduler thread; each round can emit several tokens.
        speculative_round(*stream);
        continue;
      }
      round_lanes_.push_back(stream.get());
      round_states_.push_back(&stream->state);
      round_tokens_.push_back(stream->next);
    }
    if (!round_lanes_.empty()) {
      // The decode step is shared across lanes, so the same wall-clock
      // interval is recorded once per *traced* request — each request's
      // timeline stays complete on its own trace_id.
      bool any_traced = false;
      for (const Stream* lane : round_lanes_) {
        any_traced = any_traced || lane->request.trace.active();
      }
      const double decode_start =
          any_traced ? obs::TraceSink::global().now_seconds() : 0.0;
      try {
        const tensor::Matrix& logits = model_.model().decode_step_batch(
            round_states_, round_tokens_, batch_scratch_);
        for (std::size_t b = 0; b < round_lanes_.size(); ++b) {
          round_lanes_[b]->next = argmax(logits.row(b));
        }
      } catch (...) {
        // Batch-level failure (we pre-check per-lane preconditions, so
        // this is defensive): fail every lane that was in the batch.
        for (Stream* lane : round_lanes_) {
          lane->error = std::current_exception();
          lane->done = true;
        }
      }
      if (any_traced) {
        const double decode_dur =
            obs::TraceSink::global().now_seconds() - decode_start;
        for (const Stream* lane : round_lanes_) {
          if (lane->request.trace.active()) {
            record_request_span("serve.decode.round", decode_start,
                                decode_dur, lane->request.trace);
          }
        }
      }
    }
    const double round_seconds = round_timer.seconds();

    std::size_t retired = 0;
    for (auto& stream : active) {
      if (stream->done) {
        finish_stream(*stream);
        stream.reset();
        ++retired;
      }
    }
    if (retired > 0) {
      active.erase(std::remove(active.begin(), active.end(), nullptr),
                   active.end());
    }
    std::lock_guard lock(mutex_);
    metrics_.rounds.add(1);
    metrics_.occupancy_sum.add(active.size() + retired);
    metrics_.round_occupancy.observe(
        static_cast<double>(active.size() + retired));
    metrics_.round_seconds.observe(round_seconds);
    metrics_.kv_pages.set(static_cast<std::int64_t>(pool_->pages_in_use()));
  }
}

}  // namespace hpcgpt::serve
