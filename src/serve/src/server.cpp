#include "hpcgpt/serve/server.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "hpcgpt/support/thread_pool.hpp"
#include "hpcgpt/support/timer.hpp"
#include "hpcgpt/text/tokenizer.hpp"

namespace hpcgpt::serve {

namespace {

text::TokenId argmax(std::span<const float> logits) {
  return static_cast<text::TokenId>(std::distance(
      logits.begin(), std::max_element(logits.begin(), logits.end())));
}

}  // namespace

InferenceServer::InferenceServer(core::HpcGpt& model, std::size_t max_batch)
    : InferenceServer(
          model, ServerOptions{.max_batch = std::max<std::size_t>(1, max_batch),
                               .max_new_tokens = 48}) {}

InferenceServer::InferenceServer(core::HpcGpt& model, ServerOptions options)
    : model_(model), options_(options) {
  options_.max_batch = std::max<std::size_t>(1, options_.max_batch);
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<std::string> InferenceServer::submit(std::string question) {
  Request request;
  request.question = std::move(question);
  request.submitted = std::chrono::steady_clock::now();
  std::future<std::string> future = request.promise.get_future();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      request.promise.set_exception(std::make_exception_ptr(
          Error("InferenceServer: submit after shutdown")));
      return future;
    }
    queue_.push_back(std::move(request));
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  }
  available_.notify_one();
  return future;
}

void InferenceServer::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_ && !scheduler_.joinable()) return;
    stopping_ = true;
  }
  available_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
}

ServerStats InferenceServer::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void InferenceServer::prefill_stream(Stream& stream) {
  try {
    // Prompt ingestion: one batched GEMM pass writes the whole prompt's
    // K/V rows and yields the first candidate token.
    stream.prompt =
        model_.prompt_ids(stream.request.question, options_.max_new_tokens);
    stream.next = argmax(model_.model().prefill(stream.state, stream.prompt));
    stream.prefilled = true;
  } catch (...) {
    stream.error = std::current_exception();
    stream.done = true;
  }
}

bool InferenceServer::emit_pending_token(Stream& stream) {
  // Same stop conditions as nn::generate_cached, one token per round.
  if (stream.next == text::BpeTokenizer::kEos ||
      stream.out.size() >= options_.max_new_tokens ||
      stream.state.length() >= model_.model().config().max_seq) {
    stream.done = true;
    return false;
  }
  stream.out.push_back(stream.next);
  if (stream.out.size() >= options_.max_new_tokens ||
      stream.state.length() >= model_.model().config().max_seq) {
    stream.done = true;
    return false;
  }
  return true;
}

void InferenceServer::finish_stream(Stream& stream) {
  const double latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    stream.request.submitted)
          .count();
  // Stats first, promise second: a client that calls stats() right after
  // its future resolves must see its own request counted.
  {
    std::lock_guard lock(mutex_);
    ++stats_.requests_served;
    stats_.prompt_tokens += stream.prompt.size();
    stats_.generated_tokens += stream.out.size();
    stats_.latency_seconds_sum += latency;
  }
  if (stream.error) {
    stream.request.promise.set_exception(stream.error);
  } else {
    stream.request.promise.set_value(model_.tokenizer().decode(stream.out));
  }
}

void InferenceServer::scheduler_loop() {
  std::vector<std::unique_ptr<Stream>> active;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      if (active.empty()) {
        available_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
        // Admission window: give a burst of arrivals a short chance to
        // fill the batch so the first rounds run at full occupancy.
        if (options_.admission_window_seconds > 0.0 && !stopping_) {
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(
                      options_.admission_window_seconds));
          available_.wait_until(lock, deadline, [this] {
            return stopping_ || queue_.size() >= options_.max_batch;
          });
        }
      }
      // Continuous batching: top the batch up from the queue every round,
      // not just when it empties.
      while (!queue_.empty() && active.size() < options_.max_batch) {
        active.push_back(std::make_unique<Stream>(
            std::move(queue_.front()), model_.model().new_decode_state()));
        queue_.pop_front();
      }
      if (active.empty()) {
        if (stopping_) return;
        continue;
      }
      stats_.peak_batch = std::max(stats_.peak_batch, active.size());
    }

    // One scheduler round: fresh lanes get their prompt ingested through
    // the GEMM prefill (independent sessions over read-only weights, so
    // they can run in parallel; GEMMs inside nest safely thanks to the
    // pool's run-inline-on-worker guard), then every live lane advances
    // one token through a single cross-request batched decode step.
    Timer round_timer;
    parallel_for(
        0, active.size(),
        [&](std::size_t i) {
          if (!active[i]->prefilled && !active[i]->done) {
            prefill_stream(*active[i]);
          }
        },
        1);

    round_lanes_.clear();
    round_states_.clear();
    round_tokens_.clear();
    for (auto& stream : active) {
      if (stream->done || !emit_pending_token(*stream)) continue;
      round_lanes_.push_back(stream.get());
      round_states_.push_back(&stream->state);
      round_tokens_.push_back(stream->next);
    }
    if (!round_lanes_.empty()) {
      try {
        const tensor::Matrix& logits = model_.model().decode_step_batch(
            round_states_, round_tokens_, batch_scratch_);
        for (std::size_t b = 0; b < round_lanes_.size(); ++b) {
          round_lanes_[b]->next = argmax(logits.row(b));
        }
      } catch (...) {
        // Batch-level failure (we pre-check per-lane preconditions, so
        // this is defensive): fail every lane that was in the batch.
        for (Stream* lane : round_lanes_) {
          lane->error = std::current_exception();
          lane->done = true;
        }
      }
    }
    const double round_seconds = round_timer.seconds();

    std::size_t retired = 0;
    for (auto& stream : active) {
      if (stream->done) {
        finish_stream(*stream);
        stream.reset();
        ++retired;
      }
    }
    if (retired > 0) {
      active.erase(std::remove(active.begin(), active.end(), nullptr),
                   active.end());
    }
    std::lock_guard lock(mutex_);
    ++stats_.batch_rounds;
    stats_.batch_occupancy_sum += active.size() + retired;
    stats_.busy_seconds += round_seconds;
  }
}

}  // namespace hpcgpt::serve
