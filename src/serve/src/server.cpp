#include "hpcgpt/serve/server.hpp"

#include <algorithm>

namespace hpcgpt::serve {

InferenceServer::InferenceServer(core::HpcGpt& model, std::size_t workers)
    : model_(model) {
  workers_.reserve(std::max<std::size_t>(1, workers));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, workers); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<std::string> InferenceServer::submit(std::string question) {
  Request request;
  request.question = std::move(question);
  std::future<std::string> future = request.promise.get_future();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      request.promise.set_exception(std::make_exception_ptr(
          Error("InferenceServer: submit after shutdown")));
      return future;
    }
    queue_.push_back(std::move(request));
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  }
  available_.notify_one();
  return future;
}

void InferenceServer::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

ServerStats InferenceServer::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void InferenceServer::worker_loop() {
  for (;;) {
    Request request;
    {
      std::unique_lock lock(mutex_);
      available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      request = std::move(queue_.front());
      queue_.pop_front();
      ++stats_.requests_served;
    }
    try {
      std::lock_guard model_lock(model_mutex_);
      request.promise.set_value(model_.ask(request.question));
    } catch (...) {
      request.promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace hpcgpt::serve
