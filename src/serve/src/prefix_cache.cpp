#include "hpcgpt/serve/prefix_cache.hpp"

#include <algorithm>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::serve {

namespace {
constexpr std::size_t kPage = nn::KvPagePool::kPageSize;
}

PrefixCache::PrefixCache(std::shared_ptr<nn::KvPagePool> pool,
                         std::size_t n_layers, std::size_t max_nodes)
    : pool_(std::move(pool)), n_layers_(n_layers), max_nodes_(max_nodes) {
  require(pool_ != nullptr, "PrefixCache: null page pool");
  require(n_layers_ > 0, "PrefixCache: zero layers");
}

PrefixCache::~PrefixCache() { clear(); }

void PrefixCache::release_pages(Node& node) {
  for (const std::uint32_t page : node.pages) pool_->release(page);
  pages_held_ -= node.pages.size();
  node.pages.clear();
}

void PrefixCache::destroy_subtree(Node& node) {
  for (auto& [key, child] : node.children) {
    destroy_subtree(*child);
    release_pages(*child);
    --nodes_;
  }
  node.children.clear();
}

void PrefixCache::clear() { destroy_subtree(root_); }

PrefixCache::Match PrefixCache::lookup(std::span<const text::TokenId> prompt,
                                       std::size_t max_tokens) {
  Match match;
  match.pages.resize(n_layers_);
  Node* cur = &root_;
  std::size_t consumed = 0;
  const std::size_t limit = std::min(prompt.size(), max_tokens);
  while (consumed < limit) {
    const auto it = cur->children.find(prompt[consumed]);
    if (it == cur->children.end()) break;
    Node* child = it->second.get();
    const std::size_t n = std::min(child->tokens.size(), limit - consumed);
    std::size_t matched = 0;
    while (matched < n && child->tokens[matched] == prompt[consumed + matched]) {
      ++matched;
    }
    if (matched == 0) break;
    // Adopt this node's page (per layer) for the matched positions — a
    // partial match shares the page up to the match point; the adopting
    // stream copy-on-writes it before appending past that point.
    for (std::size_t l = 0; l < n_layers_; ++l) {
      match.pages[l].push_back(child->pages[l]);
    }
    consumed += matched;
    touch(*child);
    // Descend only through fully-matched full chunks: a partial node is a
    // leaf, and a mid-chunk stop means deeper chunks don't apply.
    if (matched < child->tokens.size() || child->tokens.size() < kPage) break;
    cur = child;
  }
  match.tokens = consumed;
  return match;
}

void PrefixCache::insert(std::span<const text::TokenId> prompt,
                         const nn::DecodeState& state) {
  require(state.length() >= prompt.size(),
          "PrefixCache::insert: session shorter than prompt");
  Node* cur = &root_;
  std::size_t consumed = 0;
  while (consumed < prompt.size()) {
    const std::size_t chunk_len = std::min(kPage, prompt.size() - consumed);
    const std::size_t chunk_idx = consumed / kPage;
    const text::TokenId* chunk = prompt.data() + consumed;
    const auto it = cur->children.find(chunk[0]);
    if (it != cur->children.end()) {
      Node* child = it->second.get();
      const std::size_t n = std::min(child->tokens.size(), chunk_len);
      std::size_t matched = 0;
      while (matched < n && child->tokens[matched] == chunk[matched]) {
        ++matched;
      }
      if (matched < n) return;  // diverges mid-chunk: no splitting, stop
      touch(*child);
      if (matched == child->tokens.size() && matched == chunk_len) {
        // Identical chunk already cached.
        if (chunk_len < kPage) return;  // final partial chunk
        cur = child;
        consumed += chunk_len;
        continue;
      }
      if (matched == child->tokens.size()) {
        // Existing partial leaf prefixes our longer chunk: extend it in
        // place with the longer tokens and this stream's (fuller) pages.
        release_pages(*child);
        child->tokens.assign(chunk, chunk + chunk_len);
        child->pages.reserve(n_layers_);
        for (std::size_t l = 0; l < n_layers_; ++l) {
          const std::uint32_t page = state.layer_pages(l)[chunk_idx];
          pool_->retain(page);
          child->pages.push_back(page);
        }
        pages_held_ += n_layers_;
        if (chunk_len < kPage) return;
        cur = child;
        consumed += chunk_len;
        continue;
      }
      // Our final partial chunk prefixes an existing longer one — the
      // cached node already covers it.
      return;
    }
    // New tail: create a node for this chunk, evicting an old leaf when
    // the budget is full (never the node we are extending from).
    if (max_nodes_ > 0 && nodes_ >= max_nodes_) {
      if (!evict_lru_except(cur)) return;
    }
    auto node = std::make_unique<Node>();
    node->tokens.assign(chunk, chunk + chunk_len);
    node->parent = cur;
    node->pages.reserve(n_layers_);
    for (std::size_t l = 0; l < n_layers_; ++l) {
      const std::uint32_t page = state.layer_pages(l)[chunk_idx];
      pool_->retain(page);
      node->pages.push_back(page);
    }
    pages_held_ += n_layers_;
    touch(*node);
    Node* created = node.get();
    cur->children.emplace(chunk[0], std::move(node));
    ++nodes_;
    if (chunk_len < kPage) return;
    cur = created;
    consumed += chunk_len;
  }
}

bool PrefixCache::evict_lru_except(const Node* keep) {
  // Find the least-recently-used leaf (depth-first walk; the trie is
  // bounded by max_nodes, so the scan is cheap relative to a prefill).
  Node* victim = nullptr;
  std::vector<Node*> stack{&root_};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (auto& [key, child] : node->children) stack.push_back(child.get());
    if (node == &root_ || node == keep || !node->children.empty()) continue;
    if (victim == nullptr || node->last_used < victim->last_used) {
      victim = node;
    }
  }
  if (victim == nullptr) return false;
  release_pages(*victim);
  Node* parent = victim->parent;
  parent->children.erase(victim->tokens.front());
  --nodes_;
  return true;
}

}  // namespace hpcgpt::serve
