#include "hpcgpt/serve/prefix_cache.hpp"

#include <algorithm>

#include "hpcgpt/support/error.hpp"

namespace hpcgpt::serve {

namespace {
constexpr std::size_t kPage = nn::KvPagePool::kPageSize;
}

PrefixCache::PrefixCache(std::shared_ptr<nn::KvPagePool> pool,
                         std::size_t n_layers, std::size_t max_nodes)
    : pool_(std::move(pool)), n_layers_(n_layers), max_nodes_(max_nodes) {
  require(pool_ != nullptr, "PrefixCache: null page pool");
  require(n_layers_ > 0, "PrefixCache: zero layers");
}

PrefixCache::~PrefixCache() { clear(); }

void PrefixCache::release_pages(Node& node) {
  for (const std::uint32_t page : node.pages) pool_->release(page);
  pages_held_ -= node.pages.size();
  node.pages.clear();
}

void PrefixCache::destroy_subtree(Node& node) {
  for (auto& [key, child] : node.children) {
    destroy_subtree(*child);
    release_pages(*child);
    --nodes_;
  }
  node.children.clear();
}

void PrefixCache::clear() { destroy_subtree(root_); }

PrefixCache::Match PrefixCache::lookup(std::span<const text::TokenId> prompt,
                                       std::size_t max_tokens) {
  Match match;
  match.pages.resize(n_layers_);
  Node* cur = &root_;
  std::size_t consumed = 0;
  const std::size_t limit = std::min(prompt.size(), max_tokens);
  while (consumed < limit) {
    // Walk one page slot: descend the within-slot node chain as far as
    // tokens keep matching, then adopt the *deepest* matched node's page
    // (per layer) — its rows cover every shallower span of the slot, and
    // a partial match shares the page up to the match point (the adopting
    // stream copy-on-writes before appending past it).
    Node* deepest = nullptr;
    bool slot_complete = false;
    while (consumed < limit) {
      const auto it = cur->children.find(prompt[consumed]);
      if (it == cur->children.end()) break;
      Node* child = it->second.get();
      const std::size_t n = std::min(child->tokens.size(), limit - consumed);
      std::size_t matched = 0;
      while (matched < n &&
             child->tokens[matched] == prompt[consumed + matched]) {
        ++matched;
      }
      if (matched == 0) break;
      touch(*child);
      consumed += matched;
      deepest = child;
      if (matched < child->tokens.size()) break;  // diverged or hit limit
      cur = child;
      if (child->offset + child->tokens.size() == kPage) {
        slot_complete = true;
        break;
      }
      // Slot-incomplete node fully matched: continue the chain in-slot.
    }
    if (deepest == nullptr) break;
    for (std::size_t l = 0; l < n_layers_; ++l) {
      match.pages[l].push_back(deepest->pages[l]);
    }
    // A mid-slot stop means deeper slots don't apply.
    if (!slot_complete) break;
  }
  match.tokens = consumed;
  return match;
}

void PrefixCache::insert(std::span<const text::TokenId> prompt,
                         const nn::DecodeState& state) {
  require(state.length() >= prompt.size(),
          "PrefixCache::insert: session shorter than prompt");
  Node* cur = &root_;
  std::size_t consumed = 0;
  while (consumed < prompt.size()) {
    const std::size_t offset = consumed % kPage;
    const std::size_t slot = consumed / kPage;
    const std::size_t span_len = std::min(kPage - offset, prompt.size() - consumed);
    const text::TokenId* span = prompt.data() + consumed;
    const auto it = cur->children.find(span[0]);
    if (it != cur->children.end()) {
      Node* child = it->second.get();
      const std::size_t n = std::min(child->tokens.size(), span_len);
      std::size_t matched = 0;
      while (matched < n && child->tokens[matched] == span[matched]) {
        ++matched;
      }
      touch(*child);
      if (matched == child->tokens.size()) {
        // Node fully matched: keep descending — within the same slot when
        // the node is slot-incomplete, into the next slot otherwise.
        consumed += matched;
        cur = child;
        continue;
      }
      if (matched == span_len) {
        // Our prompt ends inside this node's span — already covered.
        return;
      }
      // Mid-span divergence (matched >= 1: children are keyed by their
      // first token). Split the node at the match point so both the old
      // and the new prompt keep a cached prefix; the next iteration hangs
      // the diverging branch off the shared prefix node.
      if (max_nodes_ > 0 && nodes_ >= max_nodes_) {
        if (!evict_lru_except(child)) return;
      }
      split_node(*child, matched);
      consumed += matched;
      cur = child;
      continue;
    }
    // New tail: create a node for this span, evicting an old leaf when
    // the budget is full (never the node we are extending from).
    if (max_nodes_ > 0 && nodes_ >= max_nodes_) {
      if (!evict_lru_except(cur)) return;
    }
    auto node = std::make_unique<Node>();
    node->tokens.assign(span, span + span_len);
    node->offset = offset;
    node->parent = cur;
    node->pages.reserve(n_layers_);
    for (std::size_t l = 0; l < n_layers_; ++l) {
      const std::uint32_t page = state.layer_pages(l)[slot];
      pool_->retain(page);
      node->pages.push_back(page);
    }
    pages_held_ += n_layers_;
    touch(*node);
    Node* created = node.get();
    cur->children.emplace(span[0], std::move(node));
    ++nodes_;
    cur = created;
    consumed += span_len;
  }
}

void PrefixCache::split_node(Node& node, std::size_t at) {
  auto suffix = std::make_unique<Node>();
  suffix->tokens.assign(node.tokens.begin() + static_cast<std::ptrdiff_t>(at),
                        node.tokens.end());
  suffix->offset = node.offset + at;
  // Both halves reference the same per-layer pages: the page rows up to
  // the split point are the shared prefix's K/V (causal attention), and
  // each node holds its own reference so eviction stays per-node.
  suffix->pages = node.pages;
  for (const std::uint32_t page : suffix->pages) pool_->retain(page);
  pages_held_ += n_layers_;
  suffix->children = std::move(node.children);
  for (auto& [key, grandchild] : suffix->children) {
    grandchild->parent = suffix.get();
  }
  suffix->parent = &node;
  suffix->last_used = node.last_used;
  node.tokens.resize(at);
  node.children.clear();
  const text::TokenId key = suffix->tokens.front();
  node.children.emplace(key, std::move(suffix));
  ++nodes_;
}

bool PrefixCache::evict_lru_except(const Node* keep) {
  // Find the least-recently-used leaf (depth-first walk; the trie is
  // bounded by max_nodes, so the scan is cheap relative to a prefill).
  Node* victim = nullptr;
  std::vector<Node*> stack{&root_};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (auto& [key, child] : node->children) stack.push_back(child.get());
    if (node == &root_ || node == keep || !node->children.empty()) continue;
    if (victim == nullptr || node->last_used < victim->last_used) {
      victim = node;
    }
  }
  if (victim == nullptr) return false;
  release_pages(*victim);
  Node* parent = victim->parent;
  parent->children.erase(victim->tokens.front());
  --nodes_;
  return true;
}

}  // namespace hpcgpt::serve
