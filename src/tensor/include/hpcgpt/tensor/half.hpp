#pragma once

#include <cstdint>
#include <cstring>

namespace hpcgpt::tensor {

/// IEEE-754 binary16 (half precision) stored in a uint16_t.
///
/// The paper trains with fp16 to halve memory (§4.1); this type provides
/// the same storage-precision trade-off on CPU: checkpoints and the
/// quantized inference path hold weights as Half and expand to float for
/// arithmetic. Conversions implement round-to-nearest-even and handle
/// subnormals, infinities and NaN.
class Half {
 public:
  Half() = default;

  /// Converts from float with round-to-nearest-even.
  static Half from_float(float f) {
    std::uint32_t x;
    std::memcpy(&x, &f, sizeof x);
    const std::uint32_t sign = (x >> 16) & 0x8000u;
    const std::int32_t exponent =
        static_cast<std::int32_t>((x >> 23) & 0xFFu) - 127 + 15;
    std::uint32_t mantissa = x & 0x7FFFFFu;

    Half h;
    if (((x >> 23) & 0xFFu) == 0xFFu) {  // inf / NaN
      h.bits_ = static_cast<std::uint16_t>(
          sign | 0x7C00u | (mantissa != 0 ? 0x200u : 0u));
      return h;
    }
    if (exponent >= 0x1F) {  // overflow -> inf
      h.bits_ = static_cast<std::uint16_t>(sign | 0x7C00u);
      return h;
    }
    if (exponent <= 0) {  // subnormal or zero
      if (exponent < -10) {
        h.bits_ = static_cast<std::uint16_t>(sign);
        return h;
      }
      mantissa |= 0x800000u;  // implicit leading one
      const int shift = 14 - exponent;
      std::uint32_t value = mantissa >> shift;
      // round to nearest even
      const std::uint32_t rest = mantissa & ((1u << shift) - 1);
      const std::uint32_t halfway = 1u << (shift - 1);
      if (rest > halfway || (rest == halfway && (value & 1u))) ++value;
      h.bits_ = static_cast<std::uint16_t>(sign | value);
      return h;
    }
    std::uint32_t value =
        (static_cast<std::uint32_t>(exponent) << 10) | (mantissa >> 13);
    const std::uint32_t rest = mantissa & 0x1FFFu;
    if (rest > 0x1000u || (rest == 0x1000u && (value & 1u))) ++value;
    h.bits_ = static_cast<std::uint16_t>(sign | value);
    return h;
  }

  /// Expands to float (exact).
  float to_float() const {
    const std::uint32_t sign = static_cast<std::uint32_t>(bits_ & 0x8000u) << 16;
    const std::uint32_t exponent = (bits_ >> 10) & 0x1Fu;
    const std::uint32_t mantissa = bits_ & 0x3FFu;
    std::uint32_t x;
    if (exponent == 0) {
      if (mantissa == 0) {
        x = sign;  // signed zero
      } else {
        // subnormal: normalize
        int e = -1;
        std::uint32_t m = mantissa;
        do {
          ++e;
          m <<= 1;
        } while ((m & 0x400u) == 0);
        x = sign | ((127 - 15 - e) << 23) | ((m & 0x3FFu) << 13);
      }
    } else if (exponent == 0x1F) {
      x = sign | 0x7F800000u | (mantissa << 13);  // inf / NaN
    } else {
      x = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
    }
    float f;
    std::memcpy(&f, &x, sizeof f);
    return f;
  }

  std::uint16_t bits() const { return bits_; }
  static Half from_bits(std::uint16_t b) {
    Half h;
    h.bits_ = b;
    return h;
  }

 private:
  std::uint16_t bits_ = 0;
};

}  // namespace hpcgpt::tensor
