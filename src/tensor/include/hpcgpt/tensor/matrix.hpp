#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hpcgpt/support/rng.hpp"
#include "hpcgpt/tensor/half.hpp"

namespace hpcgpt::tensor {

/// Dense row-major float32 matrix — the single tensor type of the
/// repository. Vectors are 1×n or n×1 matrices; batched sequence
/// activations are (batch*time)×features.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Row `r` as a contiguous span.
  std::span<float> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const float> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every element to `value`.
  void fill(float value);
  /// Sets every element to zero (keeps shape).
  void zero() { fill(0.0f); }

  /// Gaussian init with standard deviation `stddev`.
  void randomize(Rng& rng, float stddev);

  /// Sum of squares of all elements.
  double squared_norm() const;

  /// Lossy round-trip through binary16, element-wise (fp16 emulation).
  std::vector<Half> to_half() const;
  static Matrix from_half(std::size_t rows, std::size_t cols,
                          const std::vector<Half>& bits);

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a · b. Shapes: (m×k)·(k×n) → (m×n). Parallel over row blocks of
/// `a` via the global thread pool. Large shapes run a cache-blocked
/// kernel: B is packed once into NR-wide column panels, then an MR×NR
/// register tile streams each panel with a KC-deep k loop (see DESIGN.md,
/// "Inference engine"); small shapes fall back to a plain ikj loop.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a · bᵀ. Shapes: (m×k)·(n×k)ᵀ → (m×n).
void matmul_nt(const Matrix& a, const Matrix& b, Matrix& out);

/// out = aᵀ · b. Shapes: (k×m)ᵀ·(k×n) → (m×n).
void matmul_tn(const Matrix& a, const Matrix& b, Matrix& out);

/// out += a · b (accumulating variants used by backprop).
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& out);
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& out);

/// Elementwise helpers (shapes must match).
void add_inplace(Matrix& target, const Matrix& delta);
void scale_inplace(Matrix& target, float factor);
void hadamard_inplace(Matrix& target, const Matrix& factor);

/// In-place row-wise softmax.
void softmax_rows(Matrix& m);

}  // namespace hpcgpt::tensor
