#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "hpcgpt/tensor/matrix.hpp"

namespace hpcgpt::tensor {

/// Weight storage precision for inference. Fp32 is the training format
/// (plain Matrix); Fp16 and Int8 are inference-only packed formats held
/// by QuantizedMatrix.
enum class QuantMode : std::uint8_t { Fp32 = 0, Fp16 = 1, Int8 = 2 };

const char* quant_mode_name(QuantMode mode);
std::optional<QuantMode> parse_quant_mode(std::string_view name);

/// A weight matrix packed for the quantized GEMV/GEMM kernels.
///
/// The logical shape matches the fp32 weight it was quantized from: an
/// in×out matrix applied as y = x·W. Storage is transposed to
/// channel-major — one contiguous row per *output* channel, `in` padded
/// with zeros to the kernels' chunk size — so the batch-1 decode GEMV
/// streams each channel's weights sequentially.
///
/// Int8 uses symmetric per-output-channel scales: channel j stores
/// round(w[:,j] / scale[j]) with scale[j] = max|w[:,j]| / 127, plus the
/// channel's int8 column sum (needed by the AVX-512 VNNI offset-binary
/// kernel). Activations are quantized dynamically per row at call time.
/// Fp16 stores IEEE binary16 bits. Dispatch to the SIMD tier happens per
/// call through tensor::kernels::active().
class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  /// Packs `w` (in×out fp32) for `mode` (must be Fp16 or Int8).
  static QuantizedMatrix quantize(const Matrix& w, QuantMode mode);

  QuantMode mode() const { return mode_; }
  bool empty() const { return cols_ == 0; }
  /// Logical fp32 shape (in = rows, out = cols), not the padded one.
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Bytes of packed weight storage (quantized data + scales + colsums).
  std::size_t memory_bytes() const;

  /// Expands back to an in×out fp32 matrix (tests / debugging). Fp16 is
  /// exact per element; Int8 reconstructs q[j][i] * scale[j].
  Matrix dequantize() const;

  /// y = x·W for one activation row (x: in floats, y: out floats).
  void gemv(std::span<const float> x, std::span<float> y) const;

  /// Packed activation length the int8 kernels expect: rows() rounded up
  /// to the quantizer's 16-element chunk.
  std::size_t padded_rows() const { return in_padded_; }

  /// Int8 only: y = x·W with the activation row already quantized — `qx`
  /// holds padded_rows() bytes from kernels::quantize_row_i8 and
  /// `xscale` its returned scale (xscale == 0 means an all-zero row).
  /// Lets sibling layers that consume the same row (wq/wk/wv, gate/up)
  /// share a single quantization pass; the quantizer depends on the row
  /// alone, so results are bitwise-identical to gemv().
  void gemv_prequant(const std::int8_t* qx, float xscale,
                     std::span<float> y) const;

  /// out = x·W row-wise (x: m×in → out: m×out), parallel over rows.
  /// Resizes `out` as needed.
  void matmul(const Matrix& x, Matrix& out) const;

  /// Per-output-channel dequantization scales (Int8 only; empty for Fp16).
  std::span<const float> scales() const { return scale_; }

 private:
  std::size_t rows_ = 0;       // logical in
  std::size_t cols_ = 0;       // logical out
  std::size_t in_padded_ = 0;  // packed row length
  QuantMode mode_ = QuantMode::Fp32;
  std::vector<std::int8_t> q_;        // Int8: cols_ × in_padded_
  std::vector<std::int32_t> colsum_;  // Int8: per channel Σ_i q
  std::vector<float> scale_;          // Int8: per channel
  std::vector<std::uint16_t> h_;      // Fp16: cols_ × in_padded_ (bits)
};

}  // namespace hpcgpt::tensor
