#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace hpcgpt::tensor::kernels {

/// Instruction-set tiers of the quantized micro-kernels, best-first. The
/// active tier is probed from cpuid at first use (see active()); every
/// tier computes bitwise-identical int8 results (the int8 dot products
/// accumulate in exact int32 arithmetic, which is associative, so vector
/// width cannot change the answer — asserted tier-vs-tier in
/// test_kernels.cpp).
enum class IsaTier {
  Scalar = 0,  ///< portable C++ fallback — always supported
  Neon,        ///< aarch64 NEON (int16-widening multiply-accumulate)
  Avx2,        ///< x86 AVX2 (vpmaddubsw sign-trick) + F16C/FMA for fp16
  Avx512,      ///< x86 AVX-512 F/BW/VL/VNNI (vpdpbusd offset-binary)
};

const char* tier_name(IsaTier tier);

/// Whether the running CPU can execute `tier`'s kernels.
bool tier_supported(IsaTier tier);

/// All tiers the running CPU supports, best (widest) first. Always ends
/// with Scalar.
std::vector<IsaTier> supported_tiers();

/// Parses a HPCGPT_ISA-style tier name ("scalar", "avx2", "avx512",
/// "neon"); nullopt for anything else.
std::optional<IsaTier> parse_tier(std::string_view name);

/// Positions per KV page in the block-paged cache (nn::KvPagePool). The
/// value is load-bearing for the paged attention kernels below: page
/// boundaries land on multiples of 16, which coincide with both the
/// 8-wide AVX2 and the 16-wide AVX-512 position-chunk boundaries of the
/// dense kernels, so the paged variants can replay the dense kernels'
/// accumulation order exactly and stay bitwise-identical to a dense
/// cache within a tier.
inline constexpr std::size_t kKvPageSize = 16;

/// One tier's kernel set. All pointers are always non-null (a tier that
/// lacks a fast variant of some kernel carries the scalar one).
struct KernelTable {
  IsaTier tier = IsaTier::Scalar;
  const char* name = "scalar";

  /// Quantized GEMV: y[j] = (float(dot_j) * xscale) * wscale[j] where
  /// dot_j = Σ_i qx[i]·w_ij in exact int32. `w` is quad-interleaved:
  /// input rows are grouped four at a time and each group stores all
  /// `out` columns' 4-byte quads contiguously (byte index
  /// (i/4·out + j)·4 + i%4), so one vector load covers 8 (AVX2) or 16
  /// (AVX-512) columns and the activation quad broadcasts — column
  /// accumulators stay in registers for the whole input loop. `in` is a
  /// multiple of 16 (both operands zero-padded); `colsum[j]` is the
  /// precomputed Σ_i w_ij (used by offset-binary tiers to undo the +128
  /// activation bias; ignored by the others).
  void (*gemv_i8)(const std::int8_t* qx, const std::int8_t* w,
                  const std::int32_t* colsum, const float* wscale,
                  float xscale, std::size_t in, std::size_t out, float* y);

  /// Half-precision GEMV: y[j] = Σ_i x[i] * fp16_to_fp32(w[i*out + j]).
  /// `w` is row-major in×out binary16 bits (same layout as the fp32
  /// Matrix it came from); the SIMD tiers broadcast one activation and
  /// fma into resident column accumulators. fp16→fp32 conversion is
  /// exact everywhere; only the float accumulation order is
  /// tier-internal, so fp16 results are accuracy-bounded
  /// (test_quant.cpp) rather than bitwise-pinned.
  void (*gemv_f16)(const float* x, const std::uint16_t* w, std::size_t in,
                   std::size_t out, float* y);

  // --- fp32 attention helpers -------------------------------------------
  // The decode loop's other hot spot. These are float kernels: results
  // are identical across calls within one tier (what the batched-decode
  // == single-lane equivalence needs) but may differ between tiers by
  // accumulation order / FMA rounding, like any fp32 re-association.

  /// Attention scores against a feature-major K cache:
  /// probs[s] = Σ_i (q[i] · scale) · k[i·stride + s] for s < len.
  void (*attn_scores)(const float* q, float scale, const float* k,
                      std::size_t hd, std::size_t stride, std::size_t len,
                      float* probs);

  /// Weighted value sum against a feature-major V cache:
  /// out[i] = inv · Σ_s probs[s] · v[i·stride + s] for i < hd.
  void (*attn_values)(const float* probs, float inv, const float* v,
                      std::size_t hd, std::size_t stride, std::size_t len,
                      float* out);

  // --- paged fp32 attention helpers -------------------------------------
  // Same math against a block-paged cache: position s lives in slot
  // s % kKvPageSize of pages[s / kKvPageSize], and within a page feature
  // i's slots start at offset page_off + i·kKvPageSize (feature-major
  // with stride kKvPageSize). Each tier's paged kernel reproduces its
  // dense kernel's accumulation order, so for the same inputs the paged
  // and dense results are bitwise-identical within a tier (asserted in
  // test_kernels.cpp).

  /// probs[s] = Σ_i (q[i] · scale) · K[s] over a paged K cache.
  void (*attn_scores_paged)(const float* q, float scale,
                            const float* const* pages, std::size_t page_off,
                            std::size_t hd, std::size_t len, float* probs);

  /// out[i] = inv · Σ_s probs[s] · V[s] over a paged V cache.
  void (*attn_values_paged)(const float* probs, float inv,
                            const float* const* pages, std::size_t page_off,
                            std::size_t hd, std::size_t len, float* out);

  /// In-place softmax numerator over probs[0..len): probs[s] ←
  /// fast_expf(probs[s] - max). Returns 1/Σ so callers can fold the
  /// normalisation into the value pass (the existing decode contract).
  float (*softmax_row)(float* probs, std::size_t len);

  /// out[i] = fp16_to_fp32(a[i]) + fp16_to_fp32(b[i]) — the embedding
  /// gather+add of quantized models (token row + position row).
  void (*add_half_rows)(const std::uint16_t* a, const std::uint16_t* b,
                        std::size_t n, float* out);

  /// Decode-path RMSNorm row: out[i] = x[i] · r · gain[i] with
  /// r = 1/sqrt(mean(x²) + eps).
  void (*rmsnorm_row)(const float* x, const float* gain, std::size_t n,
                      float eps, float* out);

  /// SwiGLU elementwise combine, in place:
  /// gate[j] ← (gate[j] / (1 + e^{-gate[j]})) · up[j].
  void (*silu_mul)(float* gate, const float* up, std::size_t n);
};

/// The kernel table for `tier`; valid to call even for unsupported tiers
/// (the table is just data), but executing its kernels then is illegal.
const KernelTable& table_for(IsaTier tier);

/// The active kernel table. First call probes cpuid for the best
/// supported tier; the HPCGPT_ISA environment variable ("scalar",
/// "avx2", "avx512", "neon") overrides the probe when it names a
/// supported tier (an unsupported or unknown name warns on stderr and
/// keeps the probed tier — so forcing "avx512" on a laptop degrades
/// gracefully instead of crashing).
const KernelTable& active();

/// Forces the active tier (test hook behind the HPCGPT_ISA contract).
/// Returns false — and leaves the active tier unchanged — when the
/// running CPU does not support `tier`.
bool set_active_tier(IsaTier tier);

/// Quantizes one activation row to symmetric int8: out[i] =
/// round_to_nearest_even(x[i] * 127 / max|x|), zero-padding out[n..padded).
/// Returns the dequantization scale (max|x| / 127; 0 for an all-zero
/// row). Deliberately one shared tier-independent code path (baseline
/// SSE2 on x86-64, plain scalar elsewhere): it feeds every tier the same
/// bytes, which is half of the bitwise-identity guarantee.
float quantize_row_i8(const float* x, std::size_t n, std::size_t padded,
                      std::int8_t* out);

}  // namespace hpcgpt::tensor::kernels
