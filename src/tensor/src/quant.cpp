#include "hpcgpt/tensor/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/thread_pool.hpp"
#include "hpcgpt/tensor/half.hpp"
#include "hpcgpt/tensor/kernels.hpp"

namespace hpcgpt::tensor {
namespace {

constexpr std::size_t kInt8Pad = 16;  // int8 kernels consume 4-row quads
constexpr std::size_t kRowGrain = 16;

std::size_t pad_to(std::size_t n, std::size_t unit) {
  return (n + unit - 1) / unit * unit;
}

// Per-thread staging for the dynamically quantized activation row; serve
// decodes from many lanes concurrently and matmul() fans rows across the
// pool, so this must not be shared.
struct ActScratch {
  std::vector<std::int8_t> qx;
};

ActScratch& scratch() {
  thread_local ActScratch s;
  return s;
}

}  // namespace

const char* quant_mode_name(QuantMode mode) {
  switch (mode) {
    case QuantMode::Fp32:
      return "fp32";
    case QuantMode::Fp16:
      return "fp16";
    case QuantMode::Int8:
      return "int8";
  }
  return "unknown";
}

std::optional<QuantMode> parse_quant_mode(std::string_view name) {
  if (name == "fp32") return QuantMode::Fp32;
  if (name == "fp16") return QuantMode::Fp16;
  if (name == "int8") return QuantMode::Int8;
  return std::nullopt;
}

QuantizedMatrix QuantizedMatrix::quantize(const Matrix& w, QuantMode mode) {
  require(mode != QuantMode::Fp32,
                 "QuantizedMatrix::quantize: fp32 weights stay in Matrix");
  require(!w.empty(), "QuantizedMatrix::quantize: empty weight");
  QuantizedMatrix q;
  q.rows_ = w.rows();
  q.cols_ = w.cols();
  q.mode_ = mode;
  const std::size_t in = w.rows();
  const std::size_t out = w.cols();
  if (mode == QuantMode::Int8) {
    q.in_padded_ = pad_to(in, kInt8Pad);
    q.q_.assign(out * q.in_padded_, 0);
    q.colsum_.assign(out, 0);
    q.scale_.assign(out, 0.0f);
    std::vector<float> inv(out, 0.0f);
    for (std::size_t j = 0; j < out; ++j) {
      float amax = 0.0f;
      for (std::size_t i = 0; i < in; ++i) {
        amax = std::max(amax, std::fabs(w.at(i, j)));
      }
      if (amax > 0.0f) {
        q.scale_[j] = amax / 127.0f;
        inv[j] = 127.0f / amax;
      }
    }
    // Quad-interleaved layout (see kernels.hpp): input rows in groups of
    // four, each group holding every column's 4-byte quad contiguously.
    for (std::size_t i = 0; i < in; ++i) {
      std::int8_t* block = q.q_.data() + (i / 4) * out * 4 + (i % 4);
      for (std::size_t j = 0; j < out; ++j) {
        float v = std::nearbyint(w.at(i, j) * inv[j]);
        v = std::min(127.0f, std::max(-127.0f, v));
        const auto qv = static_cast<std::int8_t>(v);
        block[j * 4] = qv;
        q.colsum_[j] += qv;
      }
    }
  } else {
    q.in_padded_ = in;  // row-major fp16 needs no padding
    q.h_.assign(in * out, 0);
    for (std::size_t i = 0; i < in; ++i) {
      std::uint16_t* row = q.h_.data() + i * out;
      for (std::size_t j = 0; j < out; ++j) {
        row[j] = Half::from_float(w.at(i, j)).bits();
      }
    }
  }
  return q;
}

std::size_t QuantizedMatrix::memory_bytes() const {
  return q_.size() * sizeof(std::int8_t) + h_.size() * sizeof(std::uint16_t) +
         colsum_.size() * sizeof(std::int32_t) + scale_.size() * sizeof(float);
}

Matrix QuantizedMatrix::dequantize() const {
  Matrix w(rows_, cols_);
  if (mode_ == QuantMode::Int8) {
    for (std::size_t i = 0; i < rows_; ++i) {
      const std::int8_t* block = q_.data() + (i / 4) * cols_ * 4 + (i % 4);
      for (std::size_t j = 0; j < cols_; ++j) {
        w.at(i, j) = static_cast<float>(block[j * 4]) * scale_[j];
      }
    }
  } else {
    for (std::size_t i = 0; i < rows_; ++i) {
      const std::uint16_t* row = h_.data() + i * cols_;
      for (std::size_t j = 0; j < cols_; ++j) {
        w.at(i, j) = Half::from_bits(row[j]).to_float();
      }
    }
  }
  return w;
}

void QuantizedMatrix::gemv(std::span<const float> x, std::span<float> y) const {
  require(x.size() == rows_ && y.size() == cols_,
                 "QuantizedMatrix::gemv: shape mismatch");
  const kernels::KernelTable& k = kernels::active();
  if (mode_ == QuantMode::Int8) {
    ActScratch& s = scratch();
    if (s.qx.size() < in_padded_) {
      s.qx.resize(in_padded_);
    }
    const float xscale =
        kernels::quantize_row_i8(x.data(), rows_, in_padded_, s.qx.data());
    gemv_prequant(s.qx.data(), xscale, y);
  } else {
    k.gemv_f16(x.data(), h_.data(), rows_, cols_, y.data());
  }
}

void QuantizedMatrix::gemv_prequant(const std::int8_t* qx, float xscale,
                                    std::span<float> y) const {
  require(mode_ == QuantMode::Int8 && y.size() == cols_,
          "QuantizedMatrix::gemv_prequant: int8 matrix required");
  if (xscale == 0.0f) {
    std::memset(y.data(), 0, y.size() * sizeof(float));
    return;
  }
  kernels::active().gemv_i8(qx, q_.data(), colsum_.data(), scale_.data(),
                            xscale, in_padded_, cols_, y.data());
}

void QuantizedMatrix::matmul(const Matrix& x, Matrix& out) const {
  require(x.cols() == rows_, "QuantizedMatrix::matmul: shape mismatch");
  if (out.rows() != x.rows() || out.cols() != cols_) {
    out = Matrix(x.rows(), cols_);
  }
  parallel_for(
      0, x.rows(),
      [&](std::size_t r) { gemv(x.row(r), out.row(r)); }, kRowGrain);
}

}  // namespace hpcgpt::tensor
