#include "hpcgpt/tensor/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/thread_pool.hpp"

namespace hpcgpt::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::randomize(Rng& rng, float stddev) {
  for (float& x : data_) {
    x = static_cast<float>(rng.next_gaussian()) * stddev;
  }
}

double Matrix::squared_norm() const {
  double sum = 0.0;
  for (const float x : data_) sum += static_cast<double>(x) * x;
  return sum;
}

std::vector<Half> Matrix::to_half() const {
  std::vector<Half> out(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out[i] = Half::from_float(data_[i]);
  }
  return out;
}

Matrix Matrix::from_half(std::size_t rows, std::size_t cols,
                         const std::vector<Half>& bits) {
  require(bits.size() == rows * cols, "Matrix::from_half: size mismatch");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    m.data_[i] = bits[i].to_float();
  }
  return m;
}

namespace {

// Minimum rows-per-task before the GEMM bothers going parallel: tiny
// matrices (everything in the test suite's nn configs) run inline.
constexpr std::size_t kRowGrain = 16;

void check_inner(std::size_t a, std::size_t b, const char* what) {
  require(a == b, std::string("matmul: inner dimension mismatch in ") + what);
}

template <bool Accumulate>
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& out) {
  check_inner(a.cols(), b.rows(), "A*B");
  require(out.rows() == a.rows() && out.cols() == b.cols(),
          "matmul: output shape mismatch");
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  parallel_for(0, a.rows(), [&](std::size_t i) {
    float* out_row = out.row(i).data();
    if constexpr (!Accumulate) {
      std::fill(out_row, out_row + n, 0.0f);
    }
    const float* a_row = a.row(i).data();
    for (std::size_t k = 0; k < k_dim; ++k) {
      const float aik = a_row[k];
      if (aik == 0.0f) continue;
      const float* b_row = b.row(k).data();
      for (std::size_t j = 0; j < n; ++j) {
        out_row[j] += aik * b_row[j];
      }
    }
  }, kRowGrain);
}

template <bool Accumulate>
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& out) {
  check_inner(a.cols(), b.cols(), "A*B^T");
  require(out.rows() == a.rows() && out.cols() == b.rows(),
          "matmul_nt: output shape mismatch");
  const std::size_t k_dim = a.cols();
  parallel_for(0, a.rows(), [&](std::size_t i) {
    const float* a_row = a.row(i).data();
    float* out_row = out.row(i).data();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* b_row = b.row(j).data();
      float sum = 0.0f;
      for (std::size_t k = 0; k < k_dim; ++k) sum += a_row[k] * b_row[k];
      if constexpr (Accumulate) {
        out_row[j] += sum;
      } else {
        out_row[j] = sum;
      }
    }
  }, kRowGrain);
}

template <bool Accumulate>
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& out) {
  check_inner(a.rows(), b.rows(), "A^T*B");
  require(out.rows() == a.cols() && out.cols() == b.cols(),
          "matmul_tn: output shape mismatch");
  const std::size_t n = b.cols();
  // Parallelize over output rows (columns of a) so writes never collide.
  parallel_for(0, a.cols(), [&](std::size_t i) {
    float* out_row = out.row(i).data();
    if constexpr (!Accumulate) {
      std::fill(out_row, out_row + n, 0.0f);
    }
    for (std::size_t k = 0; k < a.rows(); ++k) {
      const float aki = a.at(k, i);
      if (aki == 0.0f) continue;
      const float* b_row = b.row(k).data();
      for (std::size_t j = 0; j < n; ++j) {
        out_row[j] += aki * b_row[j];
      }
    }
  }, kRowGrain);
}

}  // namespace

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  gemm_nn<false>(a, b, out);
}
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& out) {
  gemm_nn<true>(a, b, out);
}
void matmul_nt(const Matrix& a, const Matrix& b, Matrix& out) {
  gemm_nt<false>(a, b, out);
}
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& out) {
  gemm_nt<true>(a, b, out);
}
void matmul_tn(const Matrix& a, const Matrix& b, Matrix& out) {
  gemm_tn<false>(a, b, out);
}
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& out) {
  gemm_tn<true>(a, b, out);
}

void add_inplace(Matrix& target, const Matrix& delta) {
  require(target.same_shape(delta), "add_inplace: shape mismatch");
  float* t = target.data();
  const float* d = delta.data();
  for (std::size_t i = 0; i < target.size(); ++i) t[i] += d[i];
}

void scale_inplace(Matrix& target, float factor) {
  for (float& x : target.flat()) x *= factor;
}

void hadamard_inplace(Matrix& target, const Matrix& factor) {
  require(target.same_shape(factor), "hadamard_inplace: shape mismatch");
  float* t = target.data();
  const float* f = factor.data();
  for (std::size_t i = 0; i < target.size(); ++i) t[i] *= f[i];
}

void softmax_rows(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    float max_val = row[0];
    for (const float x : row) max_val = std::max(max_val, x);
    float sum = 0.0f;
    for (float& x : row) {
      x = std::exp(x - max_val);
      sum += x;
    }
    const float inv = 1.0f / sum;
    for (float& x : row) x *= inv;
  }
}

}  // namespace hpcgpt::tensor
