#include "hpcgpt/tensor/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/trace.hpp"
#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/thread_pool.hpp"

namespace hpcgpt::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::randomize(Rng& rng, float stddev) {
  for (float& x : data_) {
    x = static_cast<float>(rng.next_gaussian()) * stddev;
  }
}

double Matrix::squared_norm() const {
  double sum = 0.0;
  for (const float x : data_) sum += static_cast<double>(x) * x;
  return sum;
}

std::vector<Half> Matrix::to_half() const {
  std::vector<Half> out(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out[i] = Half::from_float(data_[i]);
  }
  return out;
}

Matrix Matrix::from_half(std::size_t rows, std::size_t cols,
                         const std::vector<Half>& bits) {
  require(bits.size() == rows * cols, "Matrix::from_half: size mismatch");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    m.data_[i] = bits[i].to_float();
  }
  return m;
}

namespace {

// Minimum rows-per-task before the GEMM bothers going parallel: tiny
// matrices (everything in the test suite's nn configs) run inline.
constexpr std::size_t kRowGrain = 16;

// Cache-blocking parameters (see DESIGN.md, "Inference engine").
//   MR×NR — register tile: the micro-kernel keeps an MR×NR accumulator
//           block live in vector registers (4×16 floats = 8 YMM / 4 ZMM).
//   KC    — k-depth of one packed B panel pass, sized so an NR-wide panel
//           strip (KC·NR floats) stays L1-resident while C streams once
//           per pass.
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 16;
constexpr std::size_t KC = 256;

// Below this flop count the packing pass costs more than it saves; the
// plain ikj loop is cache-resident anyway. Covers matvecs and the tiny
// test-suite configs.
constexpr std::size_t kSmallFlops = 32 * 32 * 32;

void check_inner(std::size_t a, std::size_t b, const char* what) {
  require(a == b, std::string("matmul: inner dimension mismatch in ") + what);
}

// How the B operand is laid out in memory relative to the logical
// (k × n) right-hand side the kernel consumes.
enum class BLayout {
  Normal,      // b is k×n, element (k, j) at b(k, j)
  Transposed,  // b is n×k, element (k, j) at b(j, k)   (A·Bᵀ)
};

/// Packs B into per-panel contiguous strips: panel p covers output
/// columns [p·NR, p·NR+NR); element (k, jj) of panel p lives at
/// packed[(p·k_dim + k)·NR + jj]. Edge panels are zero-padded to NR so
/// the micro-kernel never branches on width.
template <BLayout Layout>
std::vector<float> pack_b(const Matrix& b, std::size_t k_dim,
                          std::size_t n) {
  const std::size_t panels = (n + NR - 1) / NR;
  std::vector<float> packed(panels * k_dim * NR, 0.0f);
  for (std::size_t p = 0; p < panels; ++p) {
    const std::size_t j0 = p * NR;
    const std::size_t width = std::min(NR, n - j0);
    float* dst = packed.data() + p * k_dim * NR;
    if constexpr (Layout == BLayout::Normal) {
      for (std::size_t k = 0; k < k_dim; ++k) {
        const float* src = b.row(k).data() + j0;
        std::copy(src, src + width, dst + k * NR);
      }
    } else {
      // Transpose while packing: read n rows of length k_dim.
      for (std::size_t jj = 0; jj < width; ++jj) {
        const float* src = b.row(j0 + jj).data();
        for (std::size_t k = 0; k < k_dim; ++k) {
          dst[k * NR + jj] = src[k];
        }
      }
    }
  }
  return packed;
}

/// Micro-kernel: out[i0..i0+mr) × panel p gains A(i, k0..k1)·Bp(k0..k1).
/// `aget(i, k)` abstracts the A operand layout (normal or transposed) and
/// is inlined away. The mr==MR case is the hot path: fixed-trip loops over
/// an MR×NR accumulator array that the compiler keeps in vector registers.
template <class AGet>
inline void micro_tile(const AGet& aget, std::size_t i0, std::size_t mr,
                       const float* panel, std::size_t k0, std::size_t k1,
                       Matrix& out, std::size_t j0, std::size_t width) {
  float acc[MR][NR] = {};
  if (mr == MR) {
    for (std::size_t k = k0; k < k1; ++k) {
      const float* bp = panel + k * NR;
      const float a0 = aget(i0 + 0, k);
      const float a1 = aget(i0 + 1, k);
      const float a2 = aget(i0 + 2, k);
      const float a3 = aget(i0 + 3, k);
      for (std::size_t j = 0; j < NR; ++j) {
        acc[0][j] += a0 * bp[j];
        acc[1][j] += a1 * bp[j];
        acc[2][j] += a2 * bp[j];
        acc[3][j] += a3 * bp[j];
      }
    }
  } else {
    for (std::size_t k = k0; k < k1; ++k) {
      const float* bp = panel + k * NR;
      for (std::size_t r = 0; r < mr; ++r) {
        const float ar = aget(i0 + r, k);
        for (std::size_t j = 0; j < NR; ++j) acc[r][j] += ar * bp[j];
      }
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    float* out_row = out.row(i0 + r).data() + j0;
    for (std::size_t j = 0; j < width; ++j) out_row[j] += acc[r][j];
  }
}

/// Blocked driver shared by all three GEMM variants: B is packed once
/// into NR-wide panels, then a parallel_for over MR-row blocks runs the
/// register-tiled micro-kernel with a KC-deep k loop. `aget(i, k)` reads
/// logical A(i, k) (i indexes output rows).
template <bool Accumulate, class AGet>
void gemm_blocked(const AGet& aget, std::size_t m, std::size_t k_dim,
                  std::size_t n, const std::vector<float>& packed,
                  Matrix& out) {
  const std::size_t panels = (n + NR - 1) / NR;
  const std::size_t row_blocks = (m + MR - 1) / MR;
  parallel_for(0, row_blocks, [&](std::size_t rb) {
    const std::size_t i0 = rb * MR;
    const std::size_t mr = std::min(MR, m - i0);
    if constexpr (!Accumulate) {
      for (std::size_t r = 0; r < mr; ++r) {
        auto row = out.row(i0 + r);
        std::fill(row.begin(), row.end(), 0.0f);
      }
    }
    for (std::size_t k0 = 0; k0 < k_dim; k0 += KC) {
      const std::size_t k1 = std::min(k_dim, k0 + KC);
      for (std::size_t p = 0; p < panels; ++p) {
        const std::size_t j0 = p * NR;
        const std::size_t width = std::min(NR, n - j0);
        const float* panel = packed.data() + p * k_dim * NR;
        micro_tile(aget, i0, mr, panel, k0, k1, out, j0, width);
      }
    }
  }, std::max<std::size_t>(1, kRowGrain / MR));
}

template <bool Accumulate>
void gemm_nn(const Matrix& a, const Matrix& b, Matrix& out) {
  check_inner(a.cols(), b.rows(), "A*B");
  require(out.rows() == a.rows() && out.cols() == b.cols(),
          "matmul: output shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  // The packed-blocked path only pays off once the packing pass (k·n
  // copies plus an allocation) amortizes over enough output rows; skinny
  // GEMMs — the batched-decode projections, whose m is the lane count —
  // go through the unpacked small path regardless of flop count.
  if (m * k_dim * n < kSmallFlops || m <= 2 * MR) {
    // Dense small path: ikj with the k loop unrolled by four, no
    // zero-skip branch — the branch costs more than it saves on dense
    // activations. Two-row blocking on top: both output rows share each
    // streamed B row, halving weight traffic, while each row's k-groups
    // of four keep the exact accumulation order of Linear::apply — so a
    // batched decode round is bit-identical to the single-lane matvec.
    const float* __restrict bp = b.data();
    const std::size_t pairs = m / 2 + (m % 2);
    parallel_for(0, pairs, [&](std::size_t pi) {
      const std::size_t i0 = pi * 2;
      const std::size_t rows = std::min<std::size_t>(2, m - i0);
      for (std::size_t r = 0; r < rows; ++r) {
        if constexpr (!Accumulate) {
          float* o = out.row(i0 + r).data();
          std::fill(o, o + n, 0.0f);
        }
      }
      std::size_t k = 0;
      if (rows == 2) {
        float* __restrict o0 = out.row(i0).data();
        float* __restrict o1 = out.row(i0 + 1).data();
        const float* __restrict ar0 = a.row(i0).data();
        const float* __restrict ar1 = a.row(i0 + 1).data();
        for (; k + 4 <= k_dim; k += 4) {
          const float a00 = ar0[k], a01 = ar0[k + 1];
          const float a02 = ar0[k + 2], a03 = ar0[k + 3];
          const float a10 = ar1[k], a11 = ar1[k + 1];
          const float a12 = ar1[k + 2], a13 = ar1[k + 3];
          const float* __restrict b0 = bp + k * n;
          const float* __restrict b1 = b0 + n;
          const float* __restrict b2 = b1 + n;
          const float* __restrict b3 = b2 + n;
          for (std::size_t j = 0; j < n; ++j) {
            o0[j] += a00 * b0[j] + a01 * b1[j] + a02 * b2[j] + a03 * b3[j];
            o1[j] += a10 * b0[j] + a11 * b1[j] + a12 * b2[j] + a13 * b3[j];
          }
        }
      } else {
        float* __restrict o0 = out.row(i0).data();
        const float* __restrict ar0 = a.row(i0).data();
        for (; k + 4 <= k_dim; k += 4) {
          const float a00 = ar0[k], a01 = ar0[k + 1];
          const float a02 = ar0[k + 2], a03 = ar0[k + 3];
          const float* __restrict b0 = bp + k * n;
          const float* __restrict b1 = b0 + n;
          const float* __restrict b2 = b1 + n;
          const float* __restrict b3 = b2 + n;
          for (std::size_t j = 0; j < n; ++j) {
            o0[j] += a00 * b0[j] + a01 * b1[j] + a02 * b2[j] + a03 * b3[j];
          }
        }
      }
      for (; k < k_dim; ++k) {
        const float* __restrict b_row = bp + k * n;
        for (std::size_t r = 0; r < rows; ++r) {
          float* __restrict o = out.row(i0 + r).data();
          const float aik = a.at(i0 + r, k);
          for (std::size_t j = 0; j < n; ++j) o[j] += aik * b_row[j];
        }
      }
    }, std::max<std::size_t>(1, kRowGrain / 2));
    return;
  }
  const std::vector<float> packed = pack_b<BLayout::Normal>(b, k_dim, n);
  const float* adata = a.data();
  const std::size_t astride = a.cols();
  gemm_blocked<Accumulate>(
      [adata, astride](std::size_t i, std::size_t k) {
        return adata[i * astride + k];
      },
      m, k_dim, n, packed, out);
}

template <bool Accumulate>
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& out) {
  check_inner(a.cols(), b.cols(), "A*B^T");
  require(out.rows() == a.rows() && out.cols() == b.rows(),
          "matmul_nt: output shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.rows();
  if (m * k_dim * n < kSmallFlops) {
    parallel_for(0, m, [&](std::size_t i) {
      const float* a_row = a.row(i).data();
      float* out_row = out.row(i).data();
      for (std::size_t j = 0; j < n; ++j) {
        const float* b_row = b.row(j).data();
        float sum = 0.0f;
        for (std::size_t k = 0; k < k_dim; ++k) sum += a_row[k] * b_row[k];
        if constexpr (Accumulate) {
          out_row[j] += sum;
        } else {
          out_row[j] = sum;
        }
      }
    }, kRowGrain);
    return;
  }
  // Transpose-pack Bᵀ once, then reuse the streaming kernel: turns the
  // strided dot-product form into the same panel-contiguous FMA loop.
  const std::vector<float> packed = pack_b<BLayout::Transposed>(b, k_dim, n);
  const float* adata = a.data();
  const std::size_t astride = a.cols();
  gemm_blocked<Accumulate>(
      [adata, astride](std::size_t i, std::size_t k) {
        return adata[i * astride + k];
      },
      m, k_dim, n, packed, out);
}

template <bool Accumulate>
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& out) {
  check_inner(a.rows(), b.rows(), "A^T*B");
  require(out.rows() == a.cols() && out.cols() == b.cols(),
          "matmul_tn: output shape mismatch");
  const std::size_t m = a.cols();
  const std::size_t k_dim = a.rows();
  const std::size_t n = b.cols();
  if (m * k_dim * n < kSmallFlops) {
    // Parallelize over output rows (columns of a) so writes never collide.
    parallel_for(0, m, [&](std::size_t i) {
      float* out_row = out.row(i).data();
      if constexpr (!Accumulate) {
        std::fill(out_row, out_row + n, 0.0f);
      }
      for (std::size_t k = 0; k < k_dim; ++k) {
        const float aki = a.at(k, i);
        const float* b_row = b.row(k).data();
        for (std::size_t j = 0; j < n; ++j) {
          out_row[j] += aki * b_row[j];
        }
      }
    }, kRowGrain);
    return;
  }
  const std::vector<float> packed = pack_b<BLayout::Normal>(b, k_dim, n);
  const float* adata = a.data();
  const std::size_t astride = a.cols();
  gemm_blocked<Accumulate>(
      // Logical A(i, k) is stored a(k, i): strided broadcast loads; the
      // KC blocking keeps the touched A block L2-resident.
      [adata, astride](std::size_t i, std::size_t k) {
        return adata[k * astride + i];
      },
      m, k_dim, n, packed, out);
}

// GEMM call-volume accounting: two relaxed atomic adds per matmul entry,
// negligible next to even the smallest kernel. Every future perf PR reads
// its arithmetic workload off these counters (`tensor.gemm.*`).
void count_gemm(std::size_t m, std::size_t k_dim, std::size_t n) {
  static obs::Counter& calls =
      obs::MetricsRegistry::global().counter("tensor.gemm.calls");
  static obs::Counter& flops =
      obs::MetricsRegistry::global().counter("tensor.gemm.flops");
  calls.add(1);
  flops.add(2 * m * k_dim * n);
}

}  // namespace

// GEMM tracing: only multi-row (prefill/training-shaped, m >= 16) calls
// get spans — per-token decode GEMMs fire thousands of times per second
// and would both flood the ring buffer and blow the obs-overhead budget.
void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  count_gemm(a.rows(), a.cols(), b.cols());
  HPCGPT_TRACE_IF("tensor.gemm", a.rows() >= 16);
  gemm_nn<false>(a, b, out);
}
void matmul_acc(const Matrix& a, const Matrix& b, Matrix& out) {
  count_gemm(a.rows(), a.cols(), b.cols());
  HPCGPT_TRACE_IF("tensor.gemm", a.rows() >= 16);
  gemm_nn<true>(a, b, out);
}
void matmul_nt(const Matrix& a, const Matrix& b, Matrix& out) {
  count_gemm(a.rows(), a.cols(), b.rows());
  HPCGPT_TRACE_IF("tensor.gemm", a.rows() >= 16);
  gemm_nt<false>(a, b, out);
}
void matmul_nt_acc(const Matrix& a, const Matrix& b, Matrix& out) {
  count_gemm(a.rows(), a.cols(), b.rows());
  HPCGPT_TRACE_IF("tensor.gemm", a.rows() >= 16);
  gemm_nt<true>(a, b, out);
}
void matmul_tn(const Matrix& a, const Matrix& b, Matrix& out) {
  count_gemm(a.cols(), a.rows(), b.cols());
  HPCGPT_TRACE_IF("tensor.gemm", a.cols() >= 16);
  gemm_tn<false>(a, b, out);
}
void matmul_tn_acc(const Matrix& a, const Matrix& b, Matrix& out) {
  count_gemm(a.cols(), a.rows(), b.cols());
  HPCGPT_TRACE_IF("tensor.gemm", a.cols() >= 16);
  gemm_tn<true>(a, b, out);
}

void add_inplace(Matrix& target, const Matrix& delta) {
  require(target.same_shape(delta), "add_inplace: shape mismatch");
  float* t = target.data();
  const float* d = delta.data();
  for (std::size_t i = 0; i < target.size(); ++i) t[i] += d[i];
}

void scale_inplace(Matrix& target, float factor) {
  for (float& x : target.flat()) x *= factor;
}

void hadamard_inplace(Matrix& target, const Matrix& factor) {
  require(target.same_shape(factor), "hadamard_inplace: shape mismatch");
  float* t = target.data();
  const float* f = factor.data();
  for (std::size_t i = 0; i < target.size(); ++i) t[i] *= f[i];
}

void softmax_rows(Matrix& m) {
  // Row-parallel: each row is independent; the grain keeps the small
  // attention matrices of the test configs on the calling thread.
  parallel_for(0, m.rows(), [&](std::size_t r) {
    auto row = m.row(r);
    float max_val = row[0];
    for (const float x : row) max_val = std::max(max_val, x);
    // Separate exp and sum passes: the fused loop carries a float
    // reduction that blocks vectorization of the exp.
    for (float& x : row) x = std::exp(x - max_val);
    float sum = 0.0f;
    for (const float x : row) sum += x;
    const float inv = 1.0f / sum;
    for (float& x : row) x *= inv;
  }, kRowGrain);
}

}  // namespace hpcgpt::tensor
