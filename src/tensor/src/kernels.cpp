#include "hpcgpt/tensor/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "hpcgpt/support/fastmath.hpp"
#include "hpcgpt/tensor/half.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define HPCGPT_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define HPCGPT_NEON 1
#endif

namespace hpcgpt::tensor::kernels {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference tier. The int8 dot accumulates in int32 — every other
// tier must reproduce these exact integers, and the epilogue expression
// below (cast, ×xscale, ×wscale, in that order) is the canonical one all
// tiers share element-wise, so vector epilogues stay bitwise identical.
// ---------------------------------------------------------------------------

inline float scale_dot(std::int32_t dot, float xscale, float wscale) {
  return (static_cast<float>(dot) * xscale) * wscale;
}

void gemv_i8_scalar(const std::int8_t* qx, const std::int8_t* w,
                    const std::int32_t* /*colsum*/, const float* wscale,
                    float xscale, std::size_t in, std::size_t out, float* y) {
  const std::size_t blocks = in / 4;
  for (std::size_t j = 0; j < out; ++j) {
    std::int32_t acc = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::int8_t* wb = w + (b * out + j) * 4;
      const std::int8_t* xb = qx + b * 4;
      acc += static_cast<std::int32_t>(xb[0]) * wb[0] +
             static_cast<std::int32_t>(xb[1]) * wb[1] +
             static_cast<std::int32_t>(xb[2]) * wb[2] +
             static_cast<std::int32_t>(xb[3]) * wb[3];
    }
    y[j] = scale_dot(acc, xscale, wscale[j]);
  }
}

void gemv_f16_scalar(const float* x, const std::uint16_t* w, std::size_t in,
                     std::size_t out, float* y) {
  for (std::size_t j = 0; j < out; ++j) {
    float acc = 0.0f;
    const std::uint16_t* wj = w + j;
    for (std::size_t i = 0; i < in; ++i) {
      acc += x[i] * Half::from_bits(wj[i * out]).to_float();
    }
    y[j] = acc;
  }
}

// --- scalar fp32 attention helpers ----------------------------------------
// These are verbatim the loops the decode path ran before the dispatch
// table existed, so the scalar tier reproduces pre-kernel decode numerics
// exactly (and autovectorizes to baseline SSE2/NEON like the originals).

void attn_scores_scalar(const float* q, float scale, const float* k,
                        std::size_t hd, std::size_t stride, std::size_t len,
                        float* probs) {
  std::fill(probs, probs + len, 0.0f);
  for (std::size_t i = 0; i < hd; ++i) {
    const float qi = q[i] * scale;
    const float* __restrict kt = k + i * stride;
    for (std::size_t s = 0; s < len; ++s) probs[s] += qi * kt[s];
  }
}

void attn_values_scalar(const float* probs, float inv, const float* v,
                        std::size_t hd, std::size_t stride, std::size_t len,
                        float* out) {
  for (std::size_t i = 0; i < hd; ++i) {
    const float* __restrict vt = v + i * stride;
    float acc = 0.0f;
    for (std::size_t s = 0; s < len; ++s) acc += probs[s] * vt[s];
    out[i] = acc * inv;
  }
}

// --- scalar paged attention ------------------------------------------------
// The scores pass is per-page independent (probs[s] only reads position s),
// so it simply replays the dense kernel page by page. The values pass
// carries one accumulator per feature across pages in the same
// feature-outer / position-inner order as the dense kernel, so both are
// bitwise-identical to their dense counterparts.

void attn_scores_paged_scalar(const float* q, float scale,
                              const float* const* pages, std::size_t page_off,
                              std::size_t hd, std::size_t len, float* probs) {
  for (std::size_t p = 0; p * kKvPageSize < len; ++p) {
    const std::size_t base = p * kKvPageSize;
    const std::size_t n = std::min(kKvPageSize, len - base);
    attn_scores_scalar(q, scale, pages[p] + page_off, hd, kKvPageSize, n,
                       probs + base);
  }
}

void attn_values_paged_scalar(const float* probs, float inv,
                              const float* const* pages, std::size_t page_off,
                              std::size_t hd, std::size_t len, float* out) {
  const std::size_t n_pages = (len + kKvPageSize - 1) / kKvPageSize;
  for (std::size_t i = 0; i < hd; ++i) {
    float acc = 0.0f;
    for (std::size_t p = 0; p < n_pages; ++p) {
      const std::size_t base = p * kKvPageSize;
      const float* __restrict vt = pages[p] + page_off + i * kKvPageSize;
      const std::size_t n = std::min(kKvPageSize, len - base);
      for (std::size_t s = 0; s < n; ++s) acc += probs[base + s] * vt[s];
    }
    out[i] = acc * inv;
  }
}

float softmax_row_scalar(float* probs, std::size_t len) {
  float max_score = probs[0];
  for (std::size_t s = 1; s < len; ++s) {
    max_score = std::max(max_score, probs[s]);
  }
  for (std::size_t s = 0; s < len; ++s) {
    probs[s] = fast_expf(probs[s] - max_score);
  }
  float denom = 0.0f;
  for (std::size_t s = 0; s < len; ++s) denom += probs[s];
  return 1.0f / denom;
}

void add_half_rows_scalar(const std::uint16_t* a, const std::uint16_t* b,
                          std::size_t n, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = Half::from_bits(a[i]).to_float() + Half::from_bits(b[i]).to_float();
  }
}

void rmsnorm_row_scalar(const float* x, const float* gain, std::size_t n,
                        float eps, float* out) {
  float ms = 0.0f;
  for (std::size_t i = 0; i < n; ++i) ms += x[i] * x[i];
  const float r = 1.0f / std::sqrt(ms / static_cast<float>(n) + eps);
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] * r * gain[i];
}

void silu_mul_scalar(float* gate, const float* up, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    gate[j] = gate[j] / (1.0f + fast_expf(-gate[j])) * up[j];
  }
}

// Shared scalar tail for the x86 int8 kernels: identical integer math,
// used for output columns past the widest vector chunk.
inline std::int32_t dot_col_i8(const std::int8_t* qx, const std::int8_t* w,
                               std::size_t j, std::size_t blocks,
                               std::size_t out) {
  std::int32_t acc = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::int8_t* wb = w + (b * out + j) * 4;
    const std::int8_t* xb = qx + b * 4;
    acc += static_cast<std::int32_t>(xb[0]) * wb[0] +
           static_cast<std::int32_t>(xb[1]) * wb[1] +
           static_cast<std::int32_t>(xb[2]) * wb[2] +
           static_cast<std::int32_t>(xb[3]) * wb[3];
  }
  return acc;
}

#ifdef HPCGPT_X86

// ---------------------------------------------------------------------------
// AVX2 tier. The packed layout keeps 4-deep input quads contiguous per
// output column, so one 32-byte load covers 8 columns and the activation
// quad broadcasts into every lane. vpmaddubsw multiplies unsigned×signed
// bytes; routing the activation's sign onto the weight (llama.cpp's
// trick) keeps products exact, and pair sums are bounded by
// 2·127·127 = 32258 < 32767, so the int16 intermediate never saturates.
// Accumulators stay resident across the whole input loop — no horizontal
// reductions anywhere.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i quad_block_avx2(__m256i acc,
                                                               __m256i xq,
                                                               __m256i wv) {
  __m256i ax = _mm256_sign_epi8(xq, xq);
  __m256i sw = _mm256_sign_epi8(wv, xq);
  __m256i p16 = _mm256_maddubs_epi16(ax, sw);
  return _mm256_add_epi32(acc, _mm256_madd_epi16(p16, _mm256_set1_epi16(1)));
}

__attribute__((target("avx2"))) inline void store_scaled_avx2(
    float* y, __m256i dot, __m256 xs, const float* wscale) {
  __m256 f = _mm256_mul_ps(_mm256_cvtepi32_ps(dot), xs);
  _mm256_storeu_ps(y, _mm256_mul_ps(f, _mm256_loadu_ps(wscale)));
}

__attribute__((target("avx2"))) void gemv_i8_avx2(
    const std::int8_t* qx, const std::int8_t* w,
    const std::int32_t* /*colsum*/, const float* wscale, float xscale,
    std::size_t in, std::size_t out, float* y) {
  const std::size_t blocks = in / 4;
  const __m256 xs = _mm256_set1_ps(xscale);
  std::size_t j = 0;
  for (; j + 32 <= out; j += 32) {
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    for (std::size_t b = 0; b < blocks; ++b) {
      std::int32_t xi;
      std::memcpy(&xi, qx + b * 4, 4);
      const __m256i xq = _mm256_set1_epi32(xi);
      const std::int8_t* wb = w + (b * out + j) * 4;
      acc0 = quad_block_avx2(
          acc0, xq, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wb)));
      acc1 = quad_block_avx2(
          acc1, xq,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wb + 32)));
      acc2 = quad_block_avx2(
          acc2, xq,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wb + 64)));
      acc3 = quad_block_avx2(
          acc3, xq,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wb + 96)));
    }
    store_scaled_avx2(y + j, acc0, xs, wscale + j);
    store_scaled_avx2(y + j + 8, acc1, xs, wscale + j + 8);
    store_scaled_avx2(y + j + 16, acc2, xs, wscale + j + 16);
    store_scaled_avx2(y + j + 24, acc3, xs, wscale + j + 24);
  }
  for (; j + 8 <= out; j += 8) {
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t b = 0; b < blocks; ++b) {
      std::int32_t xi;
      std::memcpy(&xi, qx + b * 4, 4);
      acc = quad_block_avx2(acc, _mm256_set1_epi32(xi),
                            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                w + (b * out + j) * 4)));
    }
    store_scaled_avx2(y + j, acc, xs, wscale + j);
  }
  for (; j < out; ++j) {
    y[j] = scale_dot(dot_col_i8(qx, w, j, blocks, out), xscale, wscale[j]);
  }
}

// fp16 via F16C upconvert + FMA over row-major weights: broadcast one
// activation, fma into resident column accumulators. Requires f16c+fma
// in addition to avx2; probed separately so an AVX2-only CPU gets the
// scalar fp16 kernel.
__attribute__((target("avx2,fma,f16c"))) void gemv_f16_f16c(
    const float* x, const std::uint16_t* w, std::size_t in, std::size_t out,
    float* y) {
  std::size_t j = 0;
  for (; j + 32 <= out; j += 32) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    for (std::size_t i = 0; i < in; ++i) {
      const __m256 xb = _mm256_set1_ps(x[i]);
      const std::uint16_t* wr = w + i * out + j;
      acc0 = _mm256_fmadd_ps(
          xb,
          _mm256_cvtph_ps(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(wr))),
          acc0);
      acc1 = _mm256_fmadd_ps(
          xb,
          _mm256_cvtph_ps(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(wr + 8))),
          acc1);
      acc2 = _mm256_fmadd_ps(
          xb,
          _mm256_cvtph_ps(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(wr + 16))),
          acc2);
      acc3 = _mm256_fmadd_ps(
          xb,
          _mm256_cvtph_ps(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(wr + 24))),
          acc3);
    }
    _mm256_storeu_ps(y + j, acc0);
    _mm256_storeu_ps(y + j + 8, acc1);
    _mm256_storeu_ps(y + j + 16, acc2);
    _mm256_storeu_ps(y + j + 24, acc3);
  }
  for (; j + 8 <= out; j += 8) {
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t i = 0; i < in; ++i) {
      acc = _mm256_fmadd_ps(
          _mm256_set1_ps(x[i]),
          _mm256_cvtph_ps(_mm_loadu_si128(
              reinterpret_cast<const __m128i*>(w + i * out + j))),
          acc);
    }
    _mm256_storeu_ps(y + j, acc);
  }
  for (; j < out; ++j) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < in; ++i) {
      acc += x[i] * Half::from_bits(w[i * out + j]).to_float();
    }
    y[j] = acc;
  }
}

// AVX2+FMA attention helpers. The K/V caches are feature-major (unit
// stride over positions), so the position loop vectorizes directly; the
// head_dim loop stays outer with one broadcast per feature.

__attribute__((target("avx2,fma"))) inline float hsum_avx2(__m256 acc) {
  __m128 lo = _mm_add_ps(_mm256_castps256_ps128(acc),
                         _mm256_extractf128_ps(acc, 1));
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

__attribute__((target("avx2,fma"))) void attn_scores_avx2(
    const float* q, float scale, const float* k, std::size_t hd,
    std::size_t stride, std::size_t len, float* probs) {
  // Pre-broadcast the scaled query once per call (see the AVX-512
  // variant for the rationale).
  constexpr std::size_t kMaxHd = 64;
  __m256 qv[kMaxHd];
  const std::size_t hb = hd < kMaxHd ? hd : kMaxHd;
  for (std::size_t i = 0; i < hb; ++i) qv[i] = _mm256_set1_ps(q[i] * scale);
  std::size_t s = 0;
  for (; s + 8 <= len; s += 8) {
    // Four independent accumulators hide the FMA latency chain.
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 4 <= hb; i += 4) {
      const float* kt = k + i * stride + s;
      a0 = _mm256_fmadd_ps(qv[i], _mm256_loadu_ps(kt), a0);
      a1 = _mm256_fmadd_ps(qv[i + 1], _mm256_loadu_ps(kt + stride), a1);
      a2 = _mm256_fmadd_ps(qv[i + 2], _mm256_loadu_ps(kt + 2 * stride), a2);
      a3 = _mm256_fmadd_ps(qv[i + 3], _mm256_loadu_ps(kt + 3 * stride), a3);
    }
    for (; i < hd; ++i) {
      a0 = _mm256_fmadd_ps(i < kMaxHd ? qv[i] : _mm256_set1_ps(q[i] * scale),
                           _mm256_loadu_ps(k + i * stride + s), a0);
    }
    _mm256_storeu_ps(
        probs + s,
        _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3)));
  }
  for (; s < len; ++s) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < hd; ++i) {
      acc += (q[i] * scale) * k[i * stride + s];
    }
    probs[s] = acc;
  }
}

__attribute__((target("avx2,fma"))) void attn_values_avx2(
    const float* probs, float inv, const float* v, std::size_t hd,
    std::size_t stride, std::size_t len, float* out) {
  // Two output features share each probs load; their independent chains
  // hide part of the FMA latency a feature-at-a-time loop exposes.
  std::size_t i = 0;
  for (; i + 2 <= hd; i += 2) {
    const float* vt = v + i * stride;
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    std::size_t s = 0;
    for (; s + 8 <= len; s += 8) {
      const __m256 p = _mm256_loadu_ps(probs + s);
      a0 = _mm256_fmadd_ps(p, _mm256_loadu_ps(vt + s), a0);
      a1 = _mm256_fmadd_ps(p, _mm256_loadu_ps(vt + stride + s), a1);
    }
    float sum0 = hsum_avx2(a0);
    float sum1 = hsum_avx2(a1);
    for (; s < len; ++s) {
      sum0 += probs[s] * vt[s];
      sum1 += probs[s] * vt[stride + s];
    }
    out[i] = sum0 * inv;
    out[i + 1] = sum1 * inv;
  }
  for (; i < hd; ++i) {
    const float* vt = v + i * stride;
    __m256 acc = _mm256_setzero_ps();
    std::size_t s = 0;
    for (; s + 8 <= len; s += 8) {
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(probs + s),
                            _mm256_loadu_ps(vt + s), acc);
    }
    float sum = hsum_avx2(acc);
    for (; s < len; ++s) sum += probs[s] * vt[s];
    out[i] = sum * inv;
  }
}

// Paged AVX2 attention. Pages are kKvPageSize (16) positions, so the
// dense kernels' 8-wide chunk grid (s = 0, 8, 16, …) lines up with page
// starts: every full page is exactly two 8-chunks and only the final
// partial page has a scalar tail. The scores pass delegates to the dense
// kernel per page; the values pass carries the dense kernel's vector
// accumulators across pages and does the hsum + scalar tail once at the
// end — the same accumulation order, hence bitwise-identical results.

__attribute__((target("avx2,fma"))) void attn_scores_paged_avx2(
    const float* q, float scale, const float* const* pages,
    std::size_t page_off, std::size_t hd, std::size_t len, float* probs) {
  for (std::size_t p = 0; p * kKvPageSize < len; ++p) {
    const std::size_t base = p * kKvPageSize;
    const std::size_t n = std::min(kKvPageSize, len - base);
    attn_scores_avx2(q, scale, pages[p] + page_off, hd, kKvPageSize, n,
                     probs + base);
  }
}

__attribute__((target("avx2,fma"))) void attn_values_paged_avx2(
    const float* probs, float inv, const float* const* pages,
    std::size_t page_off, std::size_t hd, std::size_t len, float* out) {
  const std::size_t full = len / kKvPageSize;  // fully-populated pages
  const std::size_t rem = len - full * kKvPageSize;
  std::size_t i = 0;
  for (; i + 2 <= hd; i += 2) {
    const std::size_t off = page_off + i * kKvPageSize;
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    for (std::size_t p = 0; p < full; ++p) {
      const float* vt = pages[p] + off;
      const float* pr = probs + p * kKvPageSize;
      const __m256 p0 = _mm256_loadu_ps(pr);
      a0 = _mm256_fmadd_ps(p0, _mm256_loadu_ps(vt), a0);
      a1 = _mm256_fmadd_ps(p0, _mm256_loadu_ps(vt + kKvPageSize), a1);
      const __m256 p1 = _mm256_loadu_ps(pr + 8);
      a0 = _mm256_fmadd_ps(p1, _mm256_loadu_ps(vt + 8), a0);
      a1 = _mm256_fmadd_ps(p1, _mm256_loadu_ps(vt + kKvPageSize + 8), a1);
    }
    const float* vt = rem ? pages[full] + off : nullptr;
    const float* pr = probs + full * kKvPageSize;
    std::size_t s = 0;
    for (; s + 8 <= rem; s += 8) {
      const __m256 pv = _mm256_loadu_ps(pr + s);
      a0 = _mm256_fmadd_ps(pv, _mm256_loadu_ps(vt + s), a0);
      a1 = _mm256_fmadd_ps(pv, _mm256_loadu_ps(vt + kKvPageSize + s), a1);
    }
    float sum0 = hsum_avx2(a0);
    float sum1 = hsum_avx2(a1);
    for (; s < rem; ++s) {
      sum0 += pr[s] * vt[s];
      sum1 += pr[s] * vt[kKvPageSize + s];
    }
    out[i] = sum0 * inv;
    out[i + 1] = sum1 * inv;
  }
  for (; i < hd; ++i) {
    const std::size_t off = page_off + i * kKvPageSize;
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t p = 0; p < full; ++p) {
      const float* vt = pages[p] + off;
      const float* pr = probs + p * kKvPageSize;
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(pr), _mm256_loadu_ps(vt), acc);
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(pr + 8), _mm256_loadu_ps(vt + 8),
                            acc);
    }
    const float* vt = rem ? pages[full] + off : nullptr;
    const float* pr = probs + full * kKvPageSize;
    std::size_t s = 0;
    for (; s + 8 <= rem; s += 8) {
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(pr + s), _mm256_loadu_ps(vt + s),
                            acc);
    }
    float sum = hsum_avx2(acc);
    for (; s < rem; ++s) sum += pr[s] * vt[s];
    out[i] = sum * inv;
  }
}

/// Vector fast_expf: the same clamp / truncate / degree-7 polynomial /
/// exponent-bit-trick sequence as hpcgpt::fast_expf, FMA-contracted.
__attribute__((target("avx2,fma"))) inline __m256 fast_expf_avx2(__m256 x) {
  const __m256 z = _mm256_min_ps(
      _mm256_max_ps(_mm256_mul_ps(x, _mm256_set1_ps(1.4426950408889634f)),
                    _mm256_set1_ps(-126.0f)),
      _mm256_set1_ps(126.0f));
  const __m256i ei = _mm256_cvttps_epi32(z);
  const __m256 f = _mm256_sub_ps(z, _mm256_cvtepi32_ps(ei));
  __m256 p = _mm256_set1_ps(1.52527338e-5f);
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(1.54035304e-4f));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(1.33335581e-3f));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(9.61812911e-3f));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(5.55041087e-2f));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(2.40226507e-1f));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(6.93147181e-1f));
  p = _mm256_fmadd_ps(p, f, _mm256_set1_ps(1.0f));
  const __m256i bits = _mm256_slli_epi32(
      _mm256_add_epi32(ei, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(p, _mm256_castsi256_ps(bits));
}

__attribute__((target("avx2,fma"))) float softmax_row_avx2(float* probs,
                                                           std::size_t len) {
  float max_score = probs[0];
  std::size_t s = 0;
  if (len >= 8) {
    __m256 vmax = _mm256_loadu_ps(probs);
    for (s = 8; s + 8 <= len; s += 8) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(probs + s));
    }
    __m128 m = _mm_max_ps(_mm256_castps256_ps128(vmax),
                          _mm256_extractf128_ps(vmax, 1));
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
    max_score = _mm_cvtss_f32(m);
  }
  for (; s < len; ++s) max_score = std::max(max_score, probs[s]);

  const __m256 vm = _mm256_set1_ps(max_score);
  __m256 vsum = _mm256_setzero_ps();
  std::size_t t = 0;
  for (; t + 8 <= len; t += 8) {
    const __m256 e = fast_expf_avx2(_mm256_sub_ps(_mm256_loadu_ps(probs + t), vm));
    _mm256_storeu_ps(probs + t, e);
    vsum = _mm256_add_ps(vsum, e);
  }
  __m128 sl = _mm_add_ps(_mm256_castps256_ps128(vsum),
                         _mm256_extractf128_ps(vsum, 1));
  sl = _mm_add_ps(sl, _mm_movehl_ps(sl, sl));
  sl = _mm_add_ss(sl, _mm_shuffle_ps(sl, sl, 1));
  float denom = _mm_cvtss_f32(sl);
  for (; t < len; ++t) {
    const float e = fast_expf(probs[t] - max_score);
    probs[t] = e;
    denom += e;
  }
  return 1.0f / denom;
}

__attribute__((target("avx2,fma,f16c"))) void add_half_rows_f16c(
    const std::uint16_t* a, const std::uint16_t* b, std::size_t n,
    float* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 av = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256 bv = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    _mm256_storeu_ps(out + i, _mm256_add_ps(av, bv));
  }
  for (; i < n; ++i) {
    out[i] = Half::from_bits(a[i]).to_float() + Half::from_bits(b[i]).to_float();
  }
}

__attribute__((target("avx2,fma"))) void rmsnorm_row_avx2(const float* x,
                                                          const float* gain,
                                                          std::size_t n,
                                                          float eps,
                                                          float* out) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    acc = _mm256_fmadd_ps(v, v, acc);
  }
  __m128 lo = _mm_add_ps(_mm256_castps256_ps128(acc),
                         _mm256_extractf128_ps(acc, 1));
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_movehdup_ps(lo));
  float ms = _mm_cvtss_f32(lo);
  for (; i < n; ++i) ms += x[i] * x[i];
  const float r = 1.0f / std::sqrt(ms / static_cast<float>(n) + eps);
  const __m256 vr = _mm256_set1_ps(r);
  i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_mul_ps(_mm256_mul_ps(_mm256_loadu_ps(x + i), vr),
                               _mm256_loadu_ps(gain + i)));
  }
  for (; i < n; ++i) out[i] = x[i] * r * gain[i];
}

__attribute__((target("avx2,fma"))) void silu_mul_avx2(float* gate,
                                                       const float* up,
                                                       std::size_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 g = _mm256_loadu_ps(gate + j);
    const __m256 e = fast_expf_avx2(_mm256_sub_ps(_mm256_setzero_ps(), g));
    const __m256 s = _mm256_div_ps(g, _mm256_add_ps(one, e));
    _mm256_storeu_ps(gate + j, _mm256_mul_ps(s, _mm256_loadu_ps(up + j)));
  }
  for (; j < n; ++j) {
    gate[j] = gate[j] / (1.0f + fast_expf(-gate[j])) * up[j];
  }
}

// ---------------------------------------------------------------------------
// AVX-512 VNNI tier. vpdpbusd wants unsigned×signed bytes; biasing the
// activation quad into offset-binary (qx XOR 0x80 == qx + 128 as u8)
// makes it unsigned, and the bias contributes exactly 128·Σw per column,
// which pack time precomputed as colsum[j] — the epilogue subtracts it
// with one shift+sub per 16 columns. All intermediates are exact int32,
// so this tier reproduces the scalar integers bit for bit.
// ---------------------------------------------------------------------------

#define HPCGPT_AVX512_TARGET "avx512f,avx512bw,avx512vl,avx512vnni"

__attribute__((target(HPCGPT_AVX512_TARGET))) inline void store_scaled_avx512(
    float* y, __m512i biased, const std::int32_t* colsum, __m512 xs,
    const float* wscale) {
  __m512i corr = _mm512_slli_epi32(
      _mm512_loadu_si512(reinterpret_cast<const void*>(colsum)), 7);
  __m512 f =
      _mm512_mul_ps(_mm512_cvtepi32_ps(_mm512_sub_epi32(biased, corr)), xs);
  _mm512_storeu_ps(y, _mm512_mul_ps(f, _mm512_loadu_ps(wscale)));
}

__attribute__((target(HPCGPT_AVX512_TARGET))) void gemv_i8_avx512(
    const std::int8_t* qx, const std::int8_t* w, const std::int32_t* colsum,
    const float* wscale, float xscale, std::size_t in, std::size_t out,
    float* y) {
  const std::size_t blocks = in / 4;
  // Bias the activation once per call, not per column tile.
  alignas(64) std::uint8_t bx_stack[1024];
  std::uint8_t* bx = bx_stack;
  std::uint8_t* heap = nullptr;
  if (in > sizeof(bx_stack)) {
    heap = static_cast<std::uint8_t*>(::operator new(in));
    bx = heap;
  }
  // `in` is padded to a multiple of 16, so the whole bias pass vectorizes.
  const __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  for (std::size_t i = 0; i < in; i += 16) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(bx + i),
        _mm_xor_si128(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(qx + i)), bias));
  }
  const __m512 xs = _mm512_set1_ps(xscale);
  std::size_t j = 0;
  for (; j + 64 <= out; j += 64) {
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    __m512i acc2 = _mm512_setzero_si512();
    __m512i acc3 = _mm512_setzero_si512();
    for (std::size_t b = 0; b < blocks; ++b) {
      std::int32_t xi;
      std::memcpy(&xi, bx + b * 4, 4);
      const __m512i xq = _mm512_set1_epi32(xi);
      const std::int8_t* wb = w + (b * out + j) * 4;
      acc0 = _mm512_dpbusd_epi32(
          acc0, xq, _mm512_loadu_si512(reinterpret_cast<const void*>(wb)));
      acc1 = _mm512_dpbusd_epi32(
          acc1, xq,
          _mm512_loadu_si512(reinterpret_cast<const void*>(wb + 64)));
      acc2 = _mm512_dpbusd_epi32(
          acc2, xq,
          _mm512_loadu_si512(reinterpret_cast<const void*>(wb + 128)));
      acc3 = _mm512_dpbusd_epi32(
          acc3, xq,
          _mm512_loadu_si512(reinterpret_cast<const void*>(wb + 192)));
    }
    store_scaled_avx512(y + j, acc0, colsum + j, xs, wscale + j);
    store_scaled_avx512(y + j + 16, acc1, colsum + j + 16, xs, wscale + j + 16);
    store_scaled_avx512(y + j + 32, acc2, colsum + j + 32, xs, wscale + j + 32);
    store_scaled_avx512(y + j + 48, acc3, colsum + j + 48, xs, wscale + j + 48);
  }
  for (; j + 16 <= out; j += 16) {
    __m512i acc = _mm512_setzero_si512();
    for (std::size_t b = 0; b < blocks; ++b) {
      std::int32_t xi;
      std::memcpy(&xi, bx + b * 4, 4);
      acc = _mm512_dpbusd_epi32(acc, _mm512_set1_epi32(xi),
                                _mm512_loadu_si512(reinterpret_cast<const void*>(
                                    w + (b * out + j) * 4)));
    }
    store_scaled_avx512(y + j, acc, colsum + j, xs, wscale + j);
  }
  for (; j < out; ++j) {
    y[j] = scale_dot(dot_col_i8(qx, w, j, blocks, out), xscale, wscale[j]);
  }
  ::operator delete(heap);
}

__attribute__((target(HPCGPT_AVX512_TARGET ",f16c,fma"))) void
gemv_f16_avx512(const float* x, const std::uint16_t* w, std::size_t in,
                std::size_t out, float* y) {
  std::size_t j = 0;
  for (; j + 64 <= out; j += 64) {
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    __m512 acc2 = _mm512_setzero_ps();
    __m512 acc3 = _mm512_setzero_ps();
    for (std::size_t i = 0; i < in; ++i) {
      const __m512 xb = _mm512_set1_ps(x[i]);
      const std::uint16_t* wr = w + i * out + j;
      acc0 = _mm512_fmadd_ps(
          xb,
          _mm512_cvtph_ps(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wr))),
          acc0);
      acc1 = _mm512_fmadd_ps(
          xb,
          _mm512_cvtph_ps(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wr + 16))),
          acc1);
      acc2 = _mm512_fmadd_ps(
          xb,
          _mm512_cvtph_ps(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wr + 32))),
          acc2);
      acc3 = _mm512_fmadd_ps(
          xb,
          _mm512_cvtph_ps(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wr + 48))),
          acc3);
    }
    _mm512_storeu_ps(y + j, acc0);
    _mm512_storeu_ps(y + j + 16, acc1);
    _mm512_storeu_ps(y + j + 32, acc2);
    _mm512_storeu_ps(y + j + 48, acc3);
  }
  for (; j + 16 <= out; j += 16) {
    __m512 acc = _mm512_setzero_ps();
    for (std::size_t i = 0; i < in; ++i) {
      acc = _mm512_fmadd_ps(
          _mm512_set1_ps(x[i]),
          _mm512_cvtph_ps(_mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(w + i * out + j))),
          acc);
    }
    _mm512_storeu_ps(y + j, acc);
  }
  for (; j < out; ++j) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < in; ++i) {
      acc += x[i] * Half::from_bits(w[i * out + j]).to_float();
    }
    y[j] = acc;
  }
}

// AVX-512 attention helpers: 16-wide with masked tails, so every length
// takes the vector path.

__attribute__((target(HPCGPT_AVX512_TARGET))) void attn_scores_avx512(
    const float* q, float scale, const float* k, std::size_t hd,
    std::size_t stride, std::size_t len, float* probs) {
  // Pre-broadcast the scaled query once per call: rebuilding the
  // broadcasts inside the position loop costs ~hd·len/16 set1s, which
  // dominated this kernel at decode head sizes.
  constexpr std::size_t kMaxHd = 64;
  __m512 qv[kMaxHd];
  const std::size_t hb = hd < kMaxHd ? hd : kMaxHd;
  for (std::size_t i = 0; i < hb; ++i) qv[i] = _mm512_set1_ps(q[i] * scale);
  for (std::size_t s = 0; s < len; s += 16) {
    const std::size_t rem = len - s;
    const __mmask16 m =
        rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                  : static_cast<__mmask16>((1u << rem) - 1u);
    // Four independent accumulators: a single chain serializes on the
    // 4-cycle FMA latency and caps the loop at a quarter of throughput.
    __m512 a0 = _mm512_setzero_ps();
    __m512 a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps();
    __m512 a3 = _mm512_setzero_ps();
    std::size_t i = 0;
    for (; i + 4 <= hb; i += 4) {
      const float* kt = k + i * stride + s;
      a0 = _mm512_fmadd_ps(qv[i], _mm512_maskz_loadu_ps(m, kt), a0);
      a1 = _mm512_fmadd_ps(qv[i + 1], _mm512_maskz_loadu_ps(m, kt + stride),
                           a1);
      a2 = _mm512_fmadd_ps(qv[i + 2],
                           _mm512_maskz_loadu_ps(m, kt + 2 * stride), a2);
      a3 = _mm512_fmadd_ps(qv[i + 3],
                           _mm512_maskz_loadu_ps(m, kt + 3 * stride), a3);
    }
    for (; i < hd; ++i) {
      a0 = _mm512_fmadd_ps(i < kMaxHd ? qv[i] : _mm512_set1_ps(q[i] * scale),
                           _mm512_maskz_loadu_ps(m, k + i * stride + s), a0);
    }
    _mm512_mask_storeu_ps(
        probs + s, m,
        _mm512_add_ps(_mm512_add_ps(a0, a1), _mm512_add_ps(a2, a3)));
  }
}

__attribute__((target(HPCGPT_AVX512_TARGET))) void attn_values_avx512(
    const float* probs, float inv, const float* v, std::size_t hd,
    std::size_t stride, std::size_t len, float* out) {
  // Four output features share each probs load, and their four chains
  // hide the FMA latency that a feature-at-a-time loop would expose.
  std::size_t i = 0;
  for (; i + 4 <= hd; i += 4) {
    const float* vt = v + i * stride;
    __m512 a0 = _mm512_setzero_ps();
    __m512 a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps();
    __m512 a3 = _mm512_setzero_ps();
    for (std::size_t s = 0; s < len; s += 16) {
      const std::size_t rem = len - s;
      const __mmask16 m =
          rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                    : static_cast<__mmask16>((1u << rem) - 1u);
      const __m512 p = _mm512_maskz_loadu_ps(m, probs + s);
      a0 = _mm512_fmadd_ps(p, _mm512_maskz_loadu_ps(m, vt + s), a0);
      a1 = _mm512_fmadd_ps(p, _mm512_maskz_loadu_ps(m, vt + stride + s), a1);
      a2 = _mm512_fmadd_ps(p, _mm512_maskz_loadu_ps(m, vt + 2 * stride + s),
                           a2);
      a3 = _mm512_fmadd_ps(p, _mm512_maskz_loadu_ps(m, vt + 3 * stride + s),
                           a3);
    }
    out[i] = _mm512_reduce_add_ps(a0) * inv;
    out[i + 1] = _mm512_reduce_add_ps(a1) * inv;
    out[i + 2] = _mm512_reduce_add_ps(a2) * inv;
    out[i + 3] = _mm512_reduce_add_ps(a3) * inv;
  }
  for (; i < hd; ++i) {
    const float* vt = v + i * stride;
    __m512 acc = _mm512_setzero_ps();
    for (std::size_t s = 0; s < len; s += 16) {
      const std::size_t rem = len - s;
      const __mmask16 m =
          rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                    : static_cast<__mmask16>((1u << rem) - 1u);
      acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, probs + s),
                            _mm512_maskz_loadu_ps(m, vt + s), acc);
    }
    out[i] = _mm512_reduce_add_ps(acc) * inv;
  }
}

// Paged AVX-512 attention: one page is exactly one masked 16-chunk of
// the dense kernels (full pages get mask 0xFFFF, the final partial page
// the same tail mask the dense kernel would use at that offset), so both
// passes replay the dense accumulation order verbatim.

__attribute__((target(HPCGPT_AVX512_TARGET))) void attn_scores_paged_avx512(
    const float* q, float scale, const float* const* pages,
    std::size_t page_off, std::size_t hd, std::size_t len, float* probs) {
  for (std::size_t p = 0; p * kKvPageSize < len; ++p) {
    const std::size_t base = p * kKvPageSize;
    const std::size_t n = std::min(kKvPageSize, len - base);
    attn_scores_avx512(q, scale, pages[p] + page_off, hd, kKvPageSize, n,
                       probs + base);
  }
}

__attribute__((target(HPCGPT_AVX512_TARGET))) void attn_values_paged_avx512(
    const float* probs, float inv, const float* const* pages,
    std::size_t page_off, std::size_t hd, std::size_t len, float* out) {
  const std::size_t n_pages = (len + kKvPageSize - 1) / kKvPageSize;
  std::size_t i = 0;
  for (; i + 4 <= hd; i += 4) {
    const std::size_t off = page_off + i * kKvPageSize;
    __m512 a0 = _mm512_setzero_ps();
    __m512 a1 = _mm512_setzero_ps();
    __m512 a2 = _mm512_setzero_ps();
    __m512 a3 = _mm512_setzero_ps();
    for (std::size_t p = 0; p < n_pages; ++p) {
      const std::size_t rem = len - p * kKvPageSize;
      const __mmask16 m =
          rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                    : static_cast<__mmask16>((1u << rem) - 1u);
      const float* vt = pages[p] + off;
      const __m512 pv =
          _mm512_maskz_loadu_ps(m, probs + p * kKvPageSize);
      a0 = _mm512_fmadd_ps(pv, _mm512_maskz_loadu_ps(m, vt), a0);
      a1 = _mm512_fmadd_ps(pv, _mm512_maskz_loadu_ps(m, vt + kKvPageSize),
                           a1);
      a2 = _mm512_fmadd_ps(pv, _mm512_maskz_loadu_ps(m, vt + 2 * kKvPageSize),
                           a2);
      a3 = _mm512_fmadd_ps(pv, _mm512_maskz_loadu_ps(m, vt + 3 * kKvPageSize),
                           a3);
    }
    out[i] = _mm512_reduce_add_ps(a0) * inv;
    out[i + 1] = _mm512_reduce_add_ps(a1) * inv;
    out[i + 2] = _mm512_reduce_add_ps(a2) * inv;
    out[i + 3] = _mm512_reduce_add_ps(a3) * inv;
  }
  for (; i < hd; ++i) {
    const std::size_t off = page_off + i * kKvPageSize;
    __m512 acc = _mm512_setzero_ps();
    for (std::size_t p = 0; p < n_pages; ++p) {
      const std::size_t rem = len - p * kKvPageSize;
      const __mmask16 m =
          rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                    : static_cast<__mmask16>((1u << rem) - 1u);
      acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, probs + p * kKvPageSize),
                            _mm512_maskz_loadu_ps(m, pages[p] + off), acc);
    }
    out[i] = _mm512_reduce_add_ps(acc) * inv;
  }
}

/// 16-wide fast_expf (same sequence as hpcgpt::fast_expf, FMA-contracted).
__attribute__((target(HPCGPT_AVX512_TARGET))) inline __m512
fast_expf_avx512(__m512 x) {
  const __m512 z = _mm512_min_ps(
      _mm512_max_ps(_mm512_mul_ps(x, _mm512_set1_ps(1.4426950408889634f)),
                    _mm512_set1_ps(-126.0f)),
      _mm512_set1_ps(126.0f));
  const __m512i ei = _mm512_cvttps_epi32(z);
  const __m512 f = _mm512_sub_ps(z, _mm512_cvtepi32_ps(ei));
  __m512 p = _mm512_set1_ps(1.52527338e-5f);
  p = _mm512_fmadd_ps(p, f, _mm512_set1_ps(1.54035304e-4f));
  p = _mm512_fmadd_ps(p, f, _mm512_set1_ps(1.33335581e-3f));
  p = _mm512_fmadd_ps(p, f, _mm512_set1_ps(9.61812911e-3f));
  p = _mm512_fmadd_ps(p, f, _mm512_set1_ps(5.55041087e-2f));
  p = _mm512_fmadd_ps(p, f, _mm512_set1_ps(2.40226507e-1f));
  p = _mm512_fmadd_ps(p, f, _mm512_set1_ps(6.93147181e-1f));
  p = _mm512_fmadd_ps(p, f, _mm512_set1_ps(1.0f));
  const __m512i bits =
      _mm512_slli_epi32(_mm512_add_epi32(ei, _mm512_set1_epi32(127)), 23);
  return _mm512_mul_ps(p, _mm512_castsi512_ps(bits));
}

__attribute__((target(HPCGPT_AVX512_TARGET))) float softmax_row_avx512(
    float* probs, std::size_t len) {
  const __m512 ninf = _mm512_set1_ps(-1e30f);
  __m512 vmax = ninf;
  for (std::size_t s = 0; s < len; s += 16) {
    const std::size_t rem = len - s;
    const __mmask16 m =
        rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                  : static_cast<__mmask16>((1u << rem) - 1u);
    vmax = _mm512_max_ps(vmax, _mm512_mask_loadu_ps(ninf, m, probs + s));
  }
  const float max_score = _mm512_reduce_max_ps(vmax);

  const __m512 vm = _mm512_set1_ps(max_score);
  __m512 vsum = _mm512_setzero_ps();
  for (std::size_t s = 0; s < len; s += 16) {
    const std::size_t rem = len - s;
    const __mmask16 m =
        rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                  : static_cast<__mmask16>((1u << rem) - 1u);
    const __m512 e = _mm512_maskz_mov_ps(
        m, fast_expf_avx512(
               _mm512_sub_ps(_mm512_maskz_loadu_ps(m, probs + s), vm)));
    _mm512_mask_storeu_ps(probs + s, m, e);
    vsum = _mm512_add_ps(vsum, e);
  }
  return 1.0f / _mm512_reduce_add_ps(vsum);
}

__attribute__((target(HPCGPT_AVX512_TARGET ",f16c,fma"))) void
add_half_rows_avx512(const std::uint16_t* a, const std::uint16_t* b,
                     std::size_t n, float* out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 av = _mm512_cvtph_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)));
    const __m512 bv = _mm512_cvtph_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    _mm512_storeu_ps(out + i, _mm512_add_ps(av, bv));
  }
  for (; i < n; ++i) {
    out[i] = Half::from_bits(a[i]).to_float() + Half::from_bits(b[i]).to_float();
  }
}

__attribute__((target(HPCGPT_AVX512_TARGET))) void rmsnorm_row_avx512(
    const float* x, const float* gain, std::size_t n, float eps, float* out) {
  __m512 acc = _mm512_setzero_ps();
  for (std::size_t i = 0; i < n; i += 16) {
    const __mmask16 m = n - i >= 16
                            ? static_cast<__mmask16>(0xffff)
                            : static_cast<__mmask16>((1u << (n - i)) - 1);
    const __m512 v = _mm512_maskz_loadu_ps(m, x + i);
    acc = _mm512_fmadd_ps(v, v, acc);
  }
  const float ms = _mm512_reduce_add_ps(acc);
  const float r = 1.0f / std::sqrt(ms / static_cast<float>(n) + eps);
  const __m512 vr = _mm512_set1_ps(r);
  for (std::size_t i = 0; i < n; i += 16) {
    const __mmask16 m = n - i >= 16
                            ? static_cast<__mmask16>(0xffff)
                            : static_cast<__mmask16>((1u << (n - i)) - 1);
    const __m512 v = _mm512_maskz_loadu_ps(m, x + i);
    const __m512 g = _mm512_maskz_loadu_ps(m, gain + i);
    _mm512_mask_storeu_ps(out + i, m, _mm512_mul_ps(_mm512_mul_ps(v, vr), g));
  }
}

__attribute__((target(HPCGPT_AVX512_TARGET))) void silu_mul_avx512(
    float* gate, const float* up, std::size_t n) {
  const __m512 one = _mm512_set1_ps(1.0f);
  for (std::size_t j = 0; j < n; j += 16) {
    const __mmask16 m = n - j >= 16
                            ? static_cast<__mmask16>(0xffff)
                            : static_cast<__mmask16>((1u << (n - j)) - 1);
    const __m512 g = _mm512_maskz_loadu_ps(m, gate + j);
    const __m512 e =
        fast_expf_avx512(_mm512_sub_ps(_mm512_setzero_ps(), g));
    const __m512 s = _mm512_div_ps(g, _mm512_add_ps(one, e));
    _mm512_mask_storeu_ps(gate + j, m,
                          _mm512_mul_ps(s, _mm512_maskz_loadu_ps(m, up + j)));
  }
}

#endif  // HPCGPT_X86

#ifdef HPCGPT_NEON

// NEON tier: one 16-byte load covers 4 output columns' quads; products
// widen through int16 (vmull_s8) and fold pairwise into exact int32
// column dots (vpaddlq + vpaddq) — same bitwise contract as x86.
void gemv_i8_neon(const std::int8_t* qx, const std::int8_t* w,
                  const std::int32_t* /*colsum*/, const float* wscale,
                  float xscale, std::size_t in, std::size_t out, float* y) {
  const std::size_t blocks = in / 4;
  std::size_t j = 0;
  for (; j + 4 <= out; j += 4) {
    int32x4_t acc = vdupq_n_s32(0);
    for (std::size_t b = 0; b < blocks; ++b) {
      std::int32_t xi;
      std::memcpy(&xi, qx + b * 4, 4);
      int8x16_t xq = vreinterpretq_s8_s32(vdupq_n_s32(xi));
      int8x16_t wv = vld1q_s8(w + (b * out + j) * 4);
      int32x4_t lo = vpaddlq_s16(vmull_s8(vget_low_s8(xq), vget_low_s8(wv)));
      int32x4_t hi = vpaddlq_s16(vmull_s8(vget_high_s8(xq), vget_high_s8(wv)));
      acc = vaddq_s32(acc, vpaddq_s32(lo, hi));
    }
    float32x4_t f = vmulq_n_f32(vcvtq_f32_s32(acc), xscale);
    vst1q_f32(y + j, vmulq_f32(f, vld1q_f32(wscale + j)));
  }
  for (; j < out; ++j) {
    y[j] = scale_dot(dot_col_i8(qx, w, j, blocks, out), xscale, wscale[j]);
  }
}

#endif  // HPCGPT_NEON

// ---------------------------------------------------------------------------
// Tables + dispatch state
// ---------------------------------------------------------------------------

const KernelTable kScalarTable = {
    IsaTier::Scalar,          "scalar",
    gemv_i8_scalar,           gemv_f16_scalar,
    attn_scores_scalar,       attn_values_scalar,
    attn_scores_paged_scalar, attn_values_paged_scalar,
    softmax_row_scalar,       add_half_rows_scalar,
    rmsnorm_row_scalar,       silu_mul_scalar};

#ifdef HPCGPT_X86
bool cpu_has_f16c_fma() {
  return __builtin_cpu_supports("f16c") && __builtin_cpu_supports("fma");
}

const KernelTable& avx2_table() {
  // The fp32 attention helpers want FMA on top of avx2; an AVX2-only CPU
  // (no such silicon in practice, but the probe is honest) keeps the
  // scalar versions.
  const bool fma = __builtin_cpu_supports("fma");
  static const KernelTable t = {
      IsaTier::Avx2,
      "avx2",
      gemv_i8_avx2,
      cpu_has_f16c_fma() ? gemv_f16_f16c : gemv_f16_scalar,
      fma ? attn_scores_avx2 : attn_scores_scalar,
      fma ? attn_values_avx2 : attn_values_scalar,
      fma ? attn_scores_paged_avx2 : attn_scores_paged_scalar,
      fma ? attn_values_paged_avx2 : attn_values_paged_scalar,
      fma ? softmax_row_avx2 : softmax_row_scalar,
      cpu_has_f16c_fma() ? add_half_rows_f16c : add_half_rows_scalar,
      fma ? rmsnorm_row_avx2 : rmsnorm_row_scalar,
      fma ? silu_mul_avx2 : silu_mul_scalar};
  return t;
}

const KernelTable& avx512_table() {
  static const KernelTable t = {
      IsaTier::Avx512,
      "avx512",
      gemv_i8_avx512,
      cpu_has_f16c_fma() ? gemv_f16_avx512 : gemv_f16_scalar,
      attn_scores_avx512,
      attn_values_avx512,
      attn_scores_paged_avx512,
      attn_values_paged_avx512,
      softmax_row_avx512,
      cpu_has_f16c_fma() ? add_half_rows_avx512 : add_half_rows_scalar,
      rmsnorm_row_avx512,
      silu_mul_avx512};
  return t;
}
#endif

#ifdef HPCGPT_NEON
// NEON reuses the scalar fp32 helpers: on aarch64 the compiler already
// autovectorizes them (NEON is baseline), so a hand-written variant buys
// nothing the int8 kernel doesn't.
const KernelTable kNeonTable = {
    IsaTier::Neon,            "neon",
    gemv_i8_neon,             gemv_f16_scalar,
    attn_scores_scalar,       attn_values_scalar,
    attn_scores_paged_scalar, attn_values_paged_scalar,
    softmax_row_scalar,       add_half_rows_scalar,
    rmsnorm_row_scalar,       silu_mul_scalar};
#endif

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* probe_best() {
  for (IsaTier tier :
       {IsaTier::Avx512, IsaTier::Avx2, IsaTier::Neon, IsaTier::Scalar}) {
    if (tier_supported(tier)) {
      return &table_for(tier);
    }
  }
  return &kScalarTable;
}

const KernelTable* init_active() {
  const KernelTable* chosen = probe_best();
  if (const char* env = std::getenv("HPCGPT_ISA")) {
    std::optional<IsaTier> wanted = parse_tier(env);
    if (wanted && tier_supported(*wanted)) {
      chosen = &table_for(*wanted);
    } else {
      std::fprintf(stderr,
                   "hpcgpt: HPCGPT_ISA=%s is %s on this CPU; using %s\n", env,
                   wanted ? "unsupported" : "not a known tier", chosen->name);
    }
  }
  return chosen;
}

}  // namespace

const char* tier_name(IsaTier tier) {
  switch (tier) {
    case IsaTier::Scalar:
      return "scalar";
    case IsaTier::Neon:
      return "neon";
    case IsaTier::Avx2:
      return "avx2";
    case IsaTier::Avx512:
      return "avx512";
  }
  return "unknown";
}

bool tier_supported(IsaTier tier) {
  switch (tier) {
    case IsaTier::Scalar:
      return true;
    case IsaTier::Neon:
#ifdef HPCGPT_NEON
      return true;
#else
      return false;
#endif
    case IsaTier::Avx2:
#ifdef HPCGPT_X86
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case IsaTier::Avx512:
#ifdef HPCGPT_X86
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl") &&
             __builtin_cpu_supports("avx512vnni");
#else
      return false;
#endif
  }
  return false;
}

std::vector<IsaTier> supported_tiers() {
  std::vector<IsaTier> tiers;
  for (IsaTier tier :
       {IsaTier::Avx512, IsaTier::Avx2, IsaTier::Neon, IsaTier::Scalar}) {
    if (tier_supported(tier)) {
      tiers.push_back(tier);
    }
  }
  return tiers;
}

std::optional<IsaTier> parse_tier(std::string_view name) {
  if (name == "scalar") return IsaTier::Scalar;
  if (name == "neon") return IsaTier::Neon;
  if (name == "avx2") return IsaTier::Avx2;
  if (name == "avx512") return IsaTier::Avx512;
  return std::nullopt;
}

const KernelTable& table_for(IsaTier tier) {
  switch (tier) {
#ifdef HPCGPT_X86
    case IsaTier::Avx2:
      return avx2_table();
    case IsaTier::Avx512:
      return avx512_table();
#endif
#ifdef HPCGPT_NEON
    case IsaTier::Neon:
      return kNeonTable;
#endif
    default:
      return kScalarTable;
  }
}

const KernelTable& active() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    static const KernelTable* initial = init_active();
    const KernelTable* expected = nullptr;
    g_active.compare_exchange_strong(expected, initial,
                                     std::memory_order_acq_rel);
    table = g_active.load(std::memory_order_acquire);
  }
  return *table;
}

bool set_active_tier(IsaTier tier) {
  if (!tier_supported(tier)) {
    return false;
  }
  g_active.store(&table_for(tier), std::memory_order_release);
  return true;
}

float quantize_row_i8(const float* x, std::size_t n, std::size_t padded,
                      std::int8_t* out) {
  float amax = 0.0f;
  std::size_t i = 0;
#if defined(HPCGPT_X86)
  // Baseline SSE2 (part of x86-64), so this stays one shared code path
  // for every dispatch tier — the cross-tier bitwise-identity guarantee
  // does not depend on per-tier quantizers agreeing.
  const __m128 absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFFFFFF));
  __m128 vmax = _mm_setzero_ps();
  for (; i + 4 <= n; i += 4) {
    vmax = _mm_max_ps(vmax, _mm_and_ps(_mm_loadu_ps(x + i), absmask));
  }
  vmax = _mm_max_ps(vmax, _mm_shuffle_ps(vmax, vmax, _MM_SHUFFLE(1, 0, 3, 2)));
  vmax = _mm_max_ps(vmax, _mm_shuffle_ps(vmax, vmax, _MM_SHUFFLE(2, 3, 0, 1)));
  amax = _mm_cvtss_f32(vmax);
#endif
  for (; i < n; ++i) {
    amax = std::max(amax, std::fabs(x[i]));
  }
  if (amax == 0.0f) {
    std::memset(out, 0, padded);
    return 0.0f;
  }
  const float inv = 127.0f / amax;
  i = 0;
#if defined(HPCGPT_X86)
  // cvtps2dq rounds with the MXCSR mode (nearest-even by default) —
  // exactly what std::nearbyint does in the scalar tail below, so the
  // two paths produce the same bytes. |x*inv| < 127.5 by construction,
  // but clamp at the i16 stage anyway to pin the contract.
  const __m128 vinv = _mm_set1_ps(inv);
  const __m128i lo_c = _mm_set1_epi16(-127);
  const __m128i hi_c = _mm_set1_epi16(127);
  for (; i + 16 <= n; i += 16) {
    const __m128i q0 = _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + i), vinv));
    const __m128i q1 =
        _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + i + 4), vinv));
    const __m128i q2 =
        _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + i + 8), vinv));
    const __m128i q3 =
        _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + i + 12), vinv));
    __m128i w0 = _mm_packs_epi32(q0, q1);
    __m128i w1 = _mm_packs_epi32(q2, q3);
    w0 = _mm_min_epi16(hi_c, _mm_max_epi16(lo_c, w0));
    w1 = _mm_min_epi16(hi_c, _mm_max_epi16(lo_c, w1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_packs_epi16(w0, w1));
  }
#endif
  for (; i < n; ++i) {
    float q = std::nearbyint(x[i] * inv);
    q = std::min(127.0f, std::max(-127.0f, q));
    out[i] = static_cast<std::int8_t>(q);
  }
  std::memset(out + n, 0, padded - n);
  return amax / 127.0f;
}

}  // namespace hpcgpt::tensor::kernels
