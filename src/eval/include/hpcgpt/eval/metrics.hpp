#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hpcgpt::eval {

/// Confusion-matrix counts for a binary race/no-race classifier, plus the
/// tool-support bookkeeping of §4.5. "Positive" = has data race.
struct Confusion {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;
  std::size_t unsupported = 0;  ///< cases the tool could not process

  /// Records one judged case.
  void add(bool truth_race, bool predicted_race);
  /// Records one unsupported case.
  void add_unsupported() { ++unsupported; }

  std::size_t judged() const { return tp + fp + tn + fn; }
  std::size_t total() const { return judged() + unsupported; }

  // §4.5 metrics. All return 0 when their denominator is 0.
  double recall() const;       ///< TP / (TP + FN)
  double specificity() const;  ///< TN / (TN + FP)
  double precision() const;    ///< TP / (TP + FP)
  double accuracy() const;     ///< (TP + TN) / judged
  double f1() const;           ///< harmonic mean of precision and recall
  double tsr() const;          ///< judged / total (tool support rate)
  double adjusted_f1() const;  ///< F1 × TSR (the paper's headline metric)
};

/// One Table 5 row.
struct ToolRow {
  std::string tool;
  std::string language;
  Confusion confusion;
};

/// Renders rows in the Table 5 column layout:
/// Tool | Language | TP FP TN FN | Recall Specificity Precision Accuracy
/// TSR Adjusted F1. Best value per metric within a language block is
/// marked with '*' (the paper bolds it).
std::string render_table5(const std::vector<ToolRow>& rows);

/// Generic fixed-width table renderer used by the dataset tables.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

/// Formats a double with 4 decimal places (the paper's precision).
std::string fmt4(double value);

}  // namespace hpcgpt::eval
