#include "hpcgpt/eval/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace hpcgpt::eval {

namespace {

double ratio(std::size_t num, std::size_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

void Confusion::add(bool truth_race, bool predicted_race) {
  if (truth_race && predicted_race) ++tp;
  else if (!truth_race && predicted_race) ++fp;
  else if (!truth_race && !predicted_race) ++tn;
  else ++fn;
}

double Confusion::recall() const { return ratio(tp, tp + fn); }
double Confusion::specificity() const { return ratio(tn, tn + fp); }
double Confusion::precision() const { return ratio(tp, tp + fp); }
double Confusion::accuracy() const { return ratio(tp + tn, judged()); }

double Confusion::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double Confusion::tsr() const { return ratio(judged(), total()); }
double Confusion::adjusted_f1() const { return f1() * tsr(); }

std::string fmt4(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", value);
  return buf;
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) {
    width[c] = header[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << " " << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit(header);
  out << "|";
  for (const std::size_t w : width) out << std::string(w + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows) emit(row);
  return out.str();
}

std::string render_table5(const std::vector<ToolRow>& rows) {
  // Determine the per-language best value for each starred metric.
  struct Best {
    double recall = 0, specificity = 0, precision = 0, accuracy = 0,
           adjusted = 0;
  };
  std::map<std::string, Best> best;
  for (const ToolRow& r : rows) {
    Best& b = best[r.language];
    b.recall = std::max(b.recall, r.confusion.recall());
    b.specificity = std::max(b.specificity, r.confusion.specificity());
    b.precision = std::max(b.precision, r.confusion.precision());
    b.accuracy = std::max(b.accuracy, r.confusion.accuracy());
    b.adjusted = std::max(b.adjusted, r.confusion.adjusted_f1());
  }
  const auto mark = [](double v, double best_v) {
    return fmt4(v) + (v >= best_v && best_v > 0 ? "*" : " ");
  };

  std::vector<std::string> header{
      "Tool", "Language", "TP",  "FP",  "TN",          "FN",
      "Recall", "Specificity", "Precision", "Accuracy", "TSR",
      "Adjusted F1"};
  std::vector<std::vector<std::string>> body;
  for (const ToolRow& r : rows) {
    const Confusion& c = r.confusion;
    const Best& b = best[r.language];
    body.push_back({r.tool, r.language, std::to_string(c.tp),
                    std::to_string(c.fp), std::to_string(c.tn),
                    std::to_string(c.fn), mark(c.recall(), b.recall),
                    mark(c.specificity(), b.specificity),
                    mark(c.precision(), b.precision),
                    mark(c.accuracy(), b.accuracy), fmt4(c.tsr()),
                    mark(c.adjusted_f1(), b.adjusted)});
  }
  return render_table(header, body);
}

}  // namespace hpcgpt::eval
