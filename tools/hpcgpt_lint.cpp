// hpcgpt_lint — standalone static race verifier front end.
//
//   hpcgpt_lint [options] file.c|file.f90 ...
//       parse each source file (C-flavoured or Fortran-flavoured
//       mini-language) and run the three-pass analyzer over it
//   hpcgpt_lint --drb c|fortran [--count N] [--seed S]
//       lint freshly generated DataRaceBench-style cases, one per
//       category, and compare the verdict against the ground truth
//
// Options:
//   --compat    restrict to the LLOV-compatible scope (loop constructs
//               only, no GCD/range refinement, first error only)
//   --quiet     print verdict lines only, not individual diagnostics
//
// Exit status: 0 when no file had errors, 1 when at least one did,
// 2 on usage errors.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "hpcgpt/analysis/verifier.hpp"
#include "hpcgpt/drb/drb.hpp"
#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/support/error.hpp"
#include "hpcgpt/support/rng.hpp"

using namespace hpcgpt;

namespace {

struct Args {
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
};

/// True for flags that never take a value. Without this distinction the
/// parser used to swallow the token after a boolean flag, so
/// `hpcgpt_lint --quiet file.c` consumed file.c as the "value" of
/// --quiet and linted nothing.
bool is_boolean_flag(const std::string& name) {
  return name == "compat" || name == "quiet";
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      args.positional.push_back(a);
      continue;
    }
    std::string name = a.substr(2);
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {  // --key=value works for any option
      args.options[name.substr(0, eq)] = name.substr(eq + 1);
    } else if (is_boolean_flag(name)) {
      args.options[name] = "1";
    } else if (i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[name] = argv[++i];
    } else {
      args.options[name] = "1";
    }
  }
  return args;
}

std::string opt(const Args& args, const std::string& key,
                const std::string& fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Lints one program; returns true when the report carries errors.
bool lint_program(const minilang::Program& program, const std::string& label,
                  const analysis::VerifierOptions& options, bool quiet,
                  const char* expected) {
  const analysis::Report report = analysis::verify(program, options);
  std::printf("== %s ==\n", label.c_str());
  if (!quiet) {
    for (const analysis::Diagnostic& d : report.diagnostics) {
      std::printf("%s\n", analysis::to_string(d).c_str());
    }
  }
  std::printf("%s\n", report.summary().c_str());
  if (expected != nullptr) {
    std::printf("verdict: %s (expected: %s)\n",
                report.has_errors() ? "race" : "clean", expected);
  } else {
    std::printf("verdict: %s\n", report.has_errors() ? "race" : "clean");
  }
  return report.has_errors();
}

int lint_drb(const Args& args, const analysis::VerifierOptions& options,
             bool quiet) {
  const std::string language = opt(args, "drb", "c");
  require(language == "c" || language == "fortran",
          "--drb takes c or fortran");
  const minilang::Flavor flavor = language == "fortran"
                                      ? minilang::Flavor::Fortran
                                      : minilang::Flavor::C;
  const std::size_t count = std::stoull(opt(args, "count", "14"));
  Rng rng(std::stoull(opt(args, "seed", "2023")));
  const auto& categories = drb::all_categories();
  bool any_errors = false;
  for (std::size_t i = 0; i < count; ++i) {
    const drb::Category category = categories[i % categories.size()];
    const drb::TestCase tc = drb::generate_case(category, flavor, rng);
    const std::string label =
        tc.id + " [" + drb::category_name(category) + "]";
    any_errors |= lint_program(tc.program, label, options, quiet,
                               tc.has_race ? "race" : "clean");
  }
  return any_errors ? 1 : 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: hpcgpt_lint [--compat] [--quiet] file...\n"
               "       hpcgpt_lint --drb c|fortran [--count N] [--seed S]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  analysis::VerifierOptions options;
  if (opt(args, "compat", "") == "1") {
    options = analysis::VerifierOptions::llov_compat();
  }
  const bool quiet = opt(args, "quiet", "") == "1";
  try {
    if (args.options.count("drb") > 0) {
      return lint_drb(args, options, quiet);
    }
    if (args.positional.empty()) return usage();
    bool any_errors = false;
    for (const std::string& path : args.positional) {
      const minilang::Program program = minilang::parse_any(read_file(path));
      any_errors |= lint_program(program, path, options, quiet, nullptr);
    }
    return any_errors ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "hpcgpt_lint: %s\n", e.what());
    return 2;
  }
}
