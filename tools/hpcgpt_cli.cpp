// hpcgpt — command-line front end for the whole pipeline.
//
//   hpcgpt collect --out dataset.jsonl [--seed N] [--scale D]
//       run the §3.2 instruction collection and write JSON-lines
//   hpcgpt train --data dataset.jsonl --out model.bin
//          [--base llama|llama2|gpt35|gpt4] [--lora R] [--epochs E]
//          [--max-records N] [--workers W] [--micro-batch B] [--pack]
//          [--trace-out trace.json]
//       pre-train a base model and fine-tune it on the dataset;
//       --workers W runs the data-parallel engine with W model replicas
//       (0 = all cores), --micro-batch B averages B sequences per
//       optimizer step, --pack concatenates short examples to the
//       context window, --trace-out writes a Perfetto trace of the run
//   hpcgpt ask --model model.bin [--quant int8|fp16|fp32] [--rag]
//          [--retrieval scan|indexed|hybrid] [--fusion rerank|rrf]
//          [--rag-score impact|bm25] [--rag-top-k K] [--rag-min-score S]
//          "question..."
//       free-form Task-1 question answering; --rag retrieves context from
//       the built-in knowledge base through the indexed hybrid search
//       engine first (--retrieval picks the query path, --fusion the
//       hybrid candidate fusion, --rag-score the document-side index
//       weighting: impact = TF-IDF, bm25 = Okapi BM25)
//   hpcgpt detect [--model model.bin] file.c|file.f90
//       race-check a source file with the four tools (and, when a model
//       is given, the LLM-based method of Task 2)
//   hpcgpt eval --model model.bin [--language c|fortran] [--quant MODE]
//       score the model on the DataRaceBench-style evaluation suite
//   hpcgpt serve --model model.bin [--metrics] [--trace-out trace.json]
//          [--quant int8|fp16|fp32] [--batch N] [--max-new-tokens T]
//          [--window SECONDS] [--kv-pages N] [--prefix-cache on|off]
//          [--speculate] [--draft llama|llama2|gpt35|gpt4]
//          [--draft-tokens K] [--rag] [--retrieval scan|indexed|hybrid]
//          [--fusion rerank|rrf] [--rag-score impact|bm25]
//          [--rag-top-k K] [--rag-min-score S]
//          [--metrics-port N] [--slo-ttft SECONDS]
//       answer questions from stdin, one per line (Figure-1 deployment).
//       Every flag maps 1:1 onto a serve::ServeConfig field:
//       --metrics prints the server's metrics JSON on shutdown,
//       --metrics-port starts the live telemetry pipeline and serves
//       GET /metrics /healthz /snapshot /history on 127.0.0.1:N
//       (0 = ephemeral; the bound port is printed at startup) with the
//       stock SLO rule set — --slo-ttft sets the TTFT burn-rate
//       objective threshold in seconds (default 0.25),
//       --trace-out writes a Perfetto/Chrome trace of every request,
//       --quant requantizes the loaded weights for inference (bundles
//       always store fp32; int8/fp16 shrink the resident footprint and
//       switch decode onto the SIMD-dispatched quantized kernels),
//       --batch sets the continuous-batching lanes, --window the
//       admission window, --kv-pages the paged-KV budget (0 = derived),
//       --prefix-cache toggles the radix-trie prompt cache, --speculate
//       enables speculative decoding with a --draft preset model
//       proposing --draft-tokens per verify round, --rag augments every
//       prompt with retrieved knowledge-base context at submit time
//   hpcgpt obs dump [--model model.bin] [--question "..."] [--compact]
//          [--format json|prom|perfetto|folded]
//       dump the process metrics registry (and, when a model is given,
//       trace one generation first so the snapshot has content);
//       prom = Prometheus text exposition, perfetto = trace-event JSON,
//       folded = flamegraph.pl folded stacks
//   hpcgpt verify-serve [--compat] [--explain] [--cache N] [--metrics]
//          [--metrics-port N] [file...]
//       analysis-as-a-service loop (no model needed): positional files
//       are each verified as a single-function unit, then every stdin
//       line of whitespace-separated paths is served as one translation
//       unit — re-submitted files hit the result cache ([hit] in the
//       output). --explain attaches the Task-2 rationale and its DRB
//       knowledge-base grounding, --compat restricts to the
//       LLOV-compatible scope, --metrics prints the service registry
//       (analysis.cache.{hits,misses,evictions} and friends) at EOF,
//       --metrics-port attaches a telemetry pipeline to the service
//       registry and serves it over HTTP exactly like `serve`
//   hpcgpt top <url|file> [--interval S] [--frames N] [--plain]
//       live terminal dashboard over a telemetry endpoint: polls
//       <url>/history every --interval seconds (default 1) and renders
//       throughput, TTFT p50/p95, queue depth, KV pages, prefix-hit rate
//       and the SLO lights; --frames N stops after N frames (0 = until
//       the endpoint goes away), --plain disables ANSI color/clearing.
//       A file argument renders one frame from a saved /history payload
//   hpcgpt export-drb --dir DIR [--language c|fortran|both]
//       write the DataRaceBench-style evaluation suite to disk as
//       .c/.f90 sources plus a labels.csv (the dataset-release artifact)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "hpcgpt/analysis/service.hpp"
#include "hpcgpt/core/evaluation.hpp"
#include "hpcgpt/core/hpcgpt.hpp"
#include "hpcgpt/core/rag.hpp"
#include "hpcgpt/retrieval/engine.hpp"
#include <filesystem>

#include "hpcgpt/datagen/pipeline.hpp"
#include "hpcgpt/eval/metrics.hpp"
#include "hpcgpt/kb/kb.hpp"
#include "hpcgpt/minilang/parse.hpp"
#include "hpcgpt/json/json.hpp"
#include "hpcgpt/obs/export.hpp"
#include "hpcgpt/obs/metrics.hpp"
#include "hpcgpt/obs/telemetry.hpp"
#include "hpcgpt/obs/trace.hpp"
#include "hpcgpt/race/detector.hpp"
#include "hpcgpt/serve/server.hpp"

using namespace hpcgpt;

namespace {

struct Args {
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
};

// Flags that never take a value. Without this list a boolean flag
// directly before a positional would swallow it (`verify-serve
// --explain kernel.c` used to parse kernel.c as the value of --explain
// and verify nothing).
bool is_boolean_flag(const std::string& name) {
  return name == "pack" || name == "metrics" || name == "compact" ||
         name == "compat" || name == "explain" || name == "speculate" ||
         name == "rag" || name == "plain";
}

Args parse_args(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      args.positional.push_back(a);
      continue;
    }
    // Both spellings work: --key value and --key=value.
    const std::size_t eq = a.find('=');
    if (eq != std::string::npos) {
      args.options[a.substr(2, eq - 2)] = a.substr(eq + 1);
    } else if (!is_boolean_flag(a.substr(2)) && i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[a.substr(2)] = argv[++i];
    } else {
      args.options[a.substr(2)] = "1";
    }
  }
  return args;
}

std::string opt(const Args& args, const std::string& key,
                const std::string& fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int cmd_collect(const Args& args) {
  const std::uint64_t seed = std::stoull(opt(args, "seed", "2023"));
  datagen::TeacherOptions topts;
  topts.seed = seed;
  datagen::TeacherModel teacher(topts);
  datagen::Task1Spec t1;
  t1.scale_divisor = std::stoull(opt(args, "scale", "8"));
  t1.seed = seed + 1;
  datagen::InstructionDataset data = datagen::collect_task1(teacher, t1);
  datagen::InstructionDataset t2 =
      datagen::collect_task2(teacher, {.seed = seed + 2});
  for (auto& r : t2.records) data.records.push_back(std::move(r));

  const std::string out_path = opt(args, "out", "dataset.jsonl");
  std::ofstream out(out_path);
  require(out.good(), "cannot write " + out_path);
  out << datagen::to_jsonl(data.records);
  std::printf("wrote %zu records to %s\n", data.records.size(),
              out_path.c_str());
  std::printf("task1: %zu emissions, %zu accepted | task2: %zu emissions, "
              "%zu accepted\n",
              data.task1_stats.input, data.task1_stats.accepted,
              t2.task2_stats.input, t2.task2_stats.accepted);
  return 0;
}

core::BaseModel base_by_name(const std::string& name) {
  if (name == "llama") return core::BaseModel::Llama;
  if (name == "llama2") return core::BaseModel::Llama2;
  if (name == "gpt35") return core::BaseModel::Gpt35;
  if (name == "gpt4") return core::BaseModel::Gpt4;
  throw InvalidArgument("unknown base model: " + name);
}

void begin_trace_capture();
void write_trace_capture(const std::string& path);

int cmd_train(const Args& args) {
  const auto records =
      datagen::from_jsonl(read_file(opt(args, "data", "dataset.jsonl")));
  std::printf("loaded %zu records\n", records.size());
  const std::string trace_out = opt(args, "trace-out", "");
  if (!trace_out.empty()) begin_trace_capture();

  const text::BpeTokenizer tokenizer = core::build_shared_tokenizer();
  core::ModelOptions spec =
      core::spec_for(base_by_name(opt(args, "base", "llama2")));
  spec.name = "hpc-gpt (" + opt(args, "base", "llama2") + ")";
  core::HpcGpt model(spec, tokenizer);
  std::printf("pre-training %zu steps...\n", spec.pretrain_steps);
  model.pretrain(kb::unstructured_corpus(), {});

  const std::size_t lora = std::stoull(opt(args, "lora", "0"));
  if (lora > 0) {
    model.model().attach_lora(lora, 2.0f * static_cast<float>(lora), true);
  }
  core::FinetuneOptions fopts;
  fopts.epochs = std::stoull(opt(args, "epochs", "3"));
  fopts.learning_rate = lora > 0 ? 1e-3f : 2e-3f;
  fopts.max_records = std::stoull(opt(args, "max-records", "0"));
  fopts.train.workers = std::stoull(opt(args, "workers", "1"));
  fopts.train.micro_batch = std::stoull(opt(args, "micro-batch", "1"));
  fopts.train.pack_sequences = args.options.count("pack") > 0;
  std::printf("fine-tuning (%s, %zu epochs, workers %s, micro-batch %zu"
              "%s)...\n",
              lora > 0 ? "LoRA" : "full", fopts.epochs,
              fopts.train.workers == 0 ? "auto"
                                       : opt(args, "workers", "1").c_str(),
              fopts.train.micro_batch,
              fopts.train.pack_sequences ? ", packed" : "");
  const core::FinetuneReport report = model.finetune(records, fopts);
  std::printf("loss %.3f -> %.3f over %zu steps, %zu trainable params, "
              "%.1fs (%zu workers, %.0f tok/s)\n",
              report.first_epoch_loss, report.last_epoch_loss, report.steps,
              report.trainable_parameters, report.wall_seconds,
              report.workers, report.tokens_per_second);

  const std::string out_path = opt(args, "out", "model.bin");
  model.save_bundle_file(out_path);
  std::printf("saved bundle to %s\n", out_path.c_str());
  if (!trace_out.empty()) write_trace_capture(trace_out);
  return 0;
}

/// --quant=int8|fp16|fp32 on the inference commands (ask/eval/serve):
/// requantizes the freshly loaded fp32 bundle in place and reports the
/// footprint change. fp32 (the default) keeps the weights as loaded.
void apply_quant(core::HpcGpt& model, const Args& args) {
  const std::string mode = opt(args, "quant", "fp32");
  if (mode == "fp32") return;
  const std::size_t before = model.model().weight_memory_bytes();
  if (mode == "int8") {
    model.set_quant_mode(tensor::QuantMode::Int8);
  } else if (mode == "fp16") {
    model.set_quant_mode(tensor::QuantMode::Fp16);
  } else {
    throw InvalidArgument("unknown --quant mode: " + mode +
                          " (expected int8, fp16 or fp32)");
  }
  const std::size_t after = model.model().weight_memory_bytes();
  std::printf("quantized weights to %s: %.0f KiB -> %.0f KiB (%.2fx "
              "smaller)\n",
              mode.c_str(), static_cast<double>(before) / 1024.0,
              static_cast<double>(after) / 1024.0,
              static_cast<double>(before) / static_cast<double>(after));
}

/// --rag support, shared by ask and serve: a SearchEngine over the
/// built-in knowledge base (unstructured paragraphs plus every flattened
/// PLP/MLPerf record), with --retrieval picking the query path and
/// --fusion the hybrid candidate fusion.
std::shared_ptr<retrieval::SearchEngine> build_rag_engine(const Args& args) {
  std::vector<std::string> chunks = kb::unstructured_corpus();
  const kb::KnowledgeBase& base = kb::KnowledgeBase::expanded();
  for (const auto& entry : base.plp) chunks.push_back(kb::flatten(entry));
  for (const auto& entry : base.mlperf) chunks.push_back(kb::flatten(entry));
  retrieval::TfidfEmbedder embedder;
  embedder.fit(chunks);
  retrieval::RetrievalConfig config;
  config.engine = retrieval::engine_by_name(opt(args, "retrieval", "indexed"));
  config.fusion = retrieval::fusion_by_name(opt(args, "fusion", "rerank"));
  // --rag-score picks the document-side index weighting: "impact" is the
  // TF-IDF impact-ordered default, "bm25" switches to Okapi BM25.
  const std::string score = opt(args, "rag-score", "impact");
  if (score == "impact") {
    config.weighting = retrieval::RetrievalConfig::Weighting::Tfidf;
  } else if (score == "bm25") {
    config.weighting = retrieval::RetrievalConfig::Weighting::Bm25;
  } else {
    throw InvalidArgument("unknown --rag-score: " + score +
                          " (expected impact or bm25)");
  }
  auto engine =
      std::make_shared<retrieval::SearchEngine>(std::move(embedder), config);
  engine->add_all(chunks);
  return engine;
}

core::RagOptions rag_options(const Args& args) {
  core::RagOptions options;
  options.top_k = std::stoul(opt(args, "rag-top-k", "2"));
  // RRF scores are rank reciprocals (at most 1/61 per source), so the
  // cosine-similarity floor of 0.05 would silently drop every hit; only
  // similarity-scored fusion gets a non-zero default.
  const bool rrf = opt(args, "fusion", "rerank") == "rrf";
  options.min_score = std::stod(opt(args, "rag-min-score", rrf ? "0.0" : "0.05"));
  return options;
}

int cmd_ask(const Args& args) {
  core::HpcGpt model =
      core::HpcGpt::load_bundle_file(opt(args, "model", "model.bin"));
  apply_quant(model, args);
  require(!args.positional.empty(), "usage: hpcgpt ask --model M \"question\"");
  if (args.options.count("rag") > 0) {
    const std::shared_ptr<retrieval::SearchEngine> engine =
        build_rag_engine(args);
    const core::RagOptions options = rag_options(args);
    for (const std::string& q : args.positional) {
      const core::RagAnswer answer = core::rag_ask(model, *engine, q, options);
      std::printf("Q: %s\nA: %s\n", q.c_str(), answer.text.c_str());
      if (answer.used_context) {
        for (const retrieval::Hit& hit : answer.context) {
          std::printf("  [context %.3f] %s\n", hit.score, hit.text.c_str());
        }
      } else {
        std::printf("  [no relevant context — answered unaided]\n");
      }
    }
    return 0;
  }
  for (const std::string& q : args.positional) {
    std::printf("Q: %s\nA: %s\n", q.c_str(), model.ask(q).c_str());
  }
  return 0;
}

int cmd_detect(const Args& args) {
  require(!args.positional.empty(), "usage: hpcgpt detect [--model M] file");
  for (const std::string& path : args.positional) {
    std::printf("== %s ==\n", path.c_str());
    const std::string source = read_file(path);
    const minilang::Program program = minilang::parse_any(source);
    const minilang::Flavor flavor =
        source.find("!$omp") != std::string::npos
            ? minilang::Flavor::Fortran
            : minilang::Flavor::C;
    for (const auto& tool : race::make_all_tools()) {
      const race::DetectionResult r = tool->analyze(program, flavor);
      std::printf("  %-16s %s\n", tool->info().name.c_str(),
                  r.verdict == race::Verdict::Race
                      ? ("RACE on '" + r.races.front().var + "'").c_str()
                  : r.verdict == race::Verdict::NoRace
                      ? "no race"
                      : ("unsupported: " + r.unsupported_reason).c_str());
    }
    const auto it = args.options.find("model");
    if (it != args.options.end()) {
      core::HpcGpt model = core::HpcGpt::load_bundle_file(it->second);
      const std::string snippet = minilang::render_snippet(program, flavor);
      const core::RaceVerdict v = model.classify_race(snippet, 256);
      std::printf("  %-16s %s\n", model.name().c_str(),
                  v == core::RaceVerdict::Yes   ? "RACE"
                  : v == core::RaceVerdict::No  ? "no race"
                                                : "prompt too long");
    }
  }
  return 0;
}

int cmd_eval(const Args& args) {
  core::HpcGpt model =
      core::HpcGpt::load_bundle_file(opt(args, "model", "model.bin"));
  apply_quant(model, args);
  const minilang::Flavor flavor = opt(args, "language", "c") == "fortran"
                                      ? minilang::Flavor::Fortran
                                      : minilang::Flavor::C;
  const auto suite = drb::evaluation_suite(flavor);
  const eval::Confusion c = core::evaluate_llm(model, suite, 256);
  std::vector<eval::ToolRow> rows(1);
  rows[0].tool = model.name();
  rows[0].language = minilang::flavor_name(flavor);
  rows[0].confusion = c;
  std::printf("%s", eval::render_table5(rows).c_str());
  return 0;
}

/// --trace-out=FILE support, shared by serve and train: arms the global
/// sink (with a deep ring so a whole run fits) before the workload, then
/// writes the Perfetto JSON artifact afterwards.
void begin_trace_capture() {
  obs::TraceSink& sink = obs::TraceSink::global();
  sink.set_capacity(1 << 16);
  sink.clear();
  sink.enable(true);
}

void write_trace_capture(const std::string& path) {
  obs::TraceSink& sink = obs::TraceSink::global();
  sink.enable(false);
  std::ofstream out(path, std::ios::binary);
  require(out.good(), "cannot write " + path);
  out << obs::perfetto_trace_json(sink);
  std::printf("wrote %zu trace events (%llu dropped) to %s — open in "
              "ui.perfetto.dev or chrome://tracing\n",
              sink.events().size(),
              static_cast<unsigned long long>(sink.dropped_count()),
              path.c_str());
}

/// --quant=int8|fp16|fp32 → tensor::QuantMode (serve: the mode lives in
/// ServeConfig and the server applies it at construction).
tensor::QuantMode quant_by_name(const std::string& mode) {
  if (mode == "fp32") return tensor::QuantMode::Fp32;
  if (mode == "int8") return tensor::QuantMode::Int8;
  if (mode == "fp16") return tensor::QuantMode::Fp16;
  throw InvalidArgument("unknown --quant mode: " + mode +
                        " (expected int8, fp16 or fp32)");
}

int cmd_serve(const Args& args) {
  core::HpcGpt model =
      core::HpcGpt::load_bundle_file(opt(args, "model", "model.bin"));
  const std::string trace_out = opt(args, "trace-out", "");
  if (!trace_out.empty()) begin_trace_capture();
  // Every serving knob maps 1:1 onto one ServeConfig field; the server
  // validates the combination and applies --quant to the loaded model.
  serve::ServeConfig config;
  config.max_batch = std::stoul(opt(args, "batch", "2"));
  config.max_new_tokens = std::stoul(opt(args, "max-new-tokens", "48"));
  config.admission_window_seconds = std::stod(opt(args, "window", "0"));
  config.quant = quant_by_name(opt(args, "quant", "fp32"));
  config.kv.page_budget = std::stoul(opt(args, "kv-pages", "0"));
  config.kv.prefix_cache = opt(args, "prefix-cache", "on") != "off";
  config.speculation.enabled = args.options.count("speculate") > 0;
  config.speculation.draft_tokens =
      std::stoul(opt(args, "draft-tokens", "4"));
  if (config.speculation.enabled) {
    config.speculation.draft =
        core::spec_for(base_by_name(opt(args, "draft", "llama")));
  }
  if (args.options.count("rag") > 0) {
    config.rag.enabled = true;
    config.rag.engine = build_rag_engine(args);
    const core::RagOptions rag = rag_options(args);
    config.rag.top_k = rag.top_k;
    config.rag.min_score = rag.min_score;
  }
  const std::string metrics_port = opt(args, "metrics-port", "");
  if (!metrics_port.empty()) {
    // The stock SLO rule set (TTFT latency burn, shed-ratio burn, queue
    // depth), sampled every 100 ms and served over loopback HTTP.
    config.telemetry =
        serve::default_telemetry(std::stod(opt(args, "slo-ttft", "0.25")));
    config.telemetry.metrics_port = std::stoi(metrics_port);
  }
  const std::size_t max_inflight = std::max<std::size_t>(config.max_batch, 1) * 2;
  serve::InferenceServer server(model, std::move(config));
  if (server.telemetry() != nullptr && server.telemetry()->http_port() >= 0) {
    std::printf("telemetry on http://127.0.0.1:%d — /metrics /healthz "
                "/snapshot /history (try: hpcgpt top "
                "http://127.0.0.1:%d)\n",
                server.telemetry()->http_port(),
                server.telemetry()->http_port());
  }
  std::printf("hpcgpt serving '%s' — one question per line, EOF to stop\n",
              model.name().c_str());
  // Submit ahead of the printer: keeping up to 2x the lane count in
  // flight lets piped stdin actually exercise continuous batching (the
  // old submit-then-get loop serialized every request). Answers still
  // print in submission order — the FIFO drain below preserves it.
  std::deque<std::future<core::GenerationResult>> inflight;
  const auto drain_front = [&] {
    std::printf("%s\n", inflight.front().get().text.c_str());
    std::fflush(stdout);
    inflight.pop_front();
  };
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    core::GenerationRequest request;
    request.prompt = line;
    inflight.push_back(server.submit(std::move(request)));
    while (inflight.size() >= max_inflight) drain_front();
  }
  while (!inflight.empty()) drain_front();
  server.shutdown();
  std::printf("served %zu requests\n", server.stats().requests_served);
  if (args.options.count("metrics") > 0) {
    std::printf("%s\n", server.metrics_json().c_str());
  }
  if (!trace_out.empty()) write_trace_capture(trace_out);
  return 0;
}

int cmd_obs(const Args& args) {
  require(!args.positional.empty() && args.positional[0] == "dump",
          "usage: hpcgpt obs dump [--model M] [--question Q] [--compact] "
          "[--format json|prom|perfetto|folded]");
  const auto model_it = args.options.find("model");
  if (model_it != args.options.end()) {
    // Run one traced generation so the dump demonstrates live content:
    // span events in the trace ring plus GEMM/prefill/decode counters.
    core::HpcGpt model = core::HpcGpt::load_bundle_file(model_it->second);
    obs::TraceSink::global().enable(true);
    core::GenerationRequest request;
    request.prompt = opt(args, "question", "What is a data race?");
    model.generate(request);
    obs::TraceSink::global().enable(false);
  }
  const std::string format = opt(args, "format", "json");
  if (format == "prom") {
    // Prometheus text exposition of the process registry (pipe into a
    // node_exporter textfile or curl-compatible scrape mock).
    std::printf("%s", obs::prometheus_text(obs::MetricsRegistry::global())
                          .c_str());
  } else if (format == "perfetto") {
    std::printf("%s\n",
                obs::perfetto_trace_json(obs::TraceSink::global()).c_str());
  } else if (format == "folded") {
    // flamegraph.pl-ready folded stacks of the buffered spans.
    std::printf("%s", obs::folded_stacks(obs::TraceSink::global()).c_str());
  } else {
    require(format == "json",
            "obs dump: unknown --format (json|prom|perfetto|folded)");
    json::Object root;
    root["metrics"] = obs::MetricsRegistry::global().snapshot();
    root["trace"] = obs::TraceSink::global().to_json();
    root["trace_dropped"] =
        static_cast<std::size_t>(obs::TraceSink::global().dropped_count());
    const json::Value dump{std::move(root)};
    std::printf("%s\n", args.options.count("compact") > 0
                            ? dump.dump().c_str()
                            : dump.dump_pretty().c_str());
  }
  return 0;
}

int cmd_verify_serve(const Args& args) {
  analysis::ServiceOptions sopts;
  if (args.options.count("compat") > 0) {
    sopts.verifier = analysis::VerifierOptions::llov_compat();
  }
  sopts.cache_capacity = std::stoull(opt(args, "cache", "1024"));
  const bool explain = args.options.count("explain") > 0;
  sopts.ground_rationales = explain;
  analysis::VerificationService service(sopts);

  // --metrics-port: same telemetry pipeline `serve` runs, attached to the
  // verification service's private registry, with a burn-rate rule on the
  // parse-failure ratio (a CI lane feeding garbage trips /healthz).
  std::unique_ptr<obs::TelemetryPipeline> telemetry;
  const std::string metrics_port = opt(args, "metrics-port", "");
  if (!metrics_port.empty()) {
    obs::TelemetryConfig tc;
    tc.enabled = true;
    tc.metrics_port = std::stoi(metrics_port);
    obs::BurnRateRule parse_rule;
    parse_rule.name = "slo.parse_failures";
    parse_rule.bad_metric = "analysis.parse_failures";
    parse_rule.good_metric = "analysis.functions";
    parse_rule.objective = 0.9;
    parse_rule.fast_window_seconds = 5.0;
    parse_rule.slow_window_seconds = 30.0;
    tc.burn_rules.push_back(parse_rule);
    telemetry = std::make_unique<obs::TelemetryPipeline>(service.metrics(),
                                                         std::move(tc));
    telemetry->start();
    std::printf("telemetry on http://127.0.0.1:%d — /metrics /healthz "
                "/snapshot /history\n",
                telemetry->http_port());
  }

  bool any_errors = false;
  const auto print_response = [&](const analysis::VerifyResponse& r) {
    for (const analysis::FunctionReport& f : r.functions) {
      if (!f.parsed) {
        std::printf("  %-24s [%s] parse error: %s\n", f.name.c_str(),
                    f.cache_hit ? "hit " : "miss", f.parse_error.c_str());
        continue;
      }
      std::printf("  %-24s [%s] %s\n", f.name.c_str(),
                  f.cache_hit ? "hit " : "miss",
                  f.has_errors() ? "race" : "clean");
      if (explain) {
        std::printf("    %s\n", f.rationale.c_str());
        for (const std::string& chunk : f.grounding) {
          std::printf("    grounded in: %s\n", chunk.c_str());
        }
      }
    }
    std::printf("%s\n", r.summary().c_str());
    any_errors |= r.has_errors();
  };
  const auto verify_unit = [&](const std::vector<std::string>& paths,
                               std::string unit) {
    analysis::VerifyRequest request;
    request.unit = std::move(unit);
    request.explain = explain;
    for (const std::string& p : paths) {
      request.functions.push_back({p, read_file(p)});
    }
    print_response(service.verify(request));
  };

  for (const std::string& path : args.positional) {
    verify_unit({path}, path);
  }
  if (args.positional.empty()) {
    // Serving loop: only when no files were given, so `verify-serve
    // file.c` exits instead of waiting on a terminal's stdin.
    std::printf("hpcgpt verify-serve — one unit per line (whitespace-"
                "separated source paths), EOF to stop\n");
    std::string line;
    std::size_t unit_no = 0;
    while (std::getline(std::cin, line)) {
      std::istringstream split(line);
      std::vector<std::string> paths;
      for (std::string token; split >> token;) paths.push_back(token);
      if (paths.empty()) continue;
      try {
        verify_unit(paths, "unit" + std::to_string(unit_no++));
      } catch (const Error& e) {
        // A bad path must not kill the serving loop.
        std::printf("error: %s\n", e.what());
      }
      std::fflush(stdout);
    }
  }
  const analysis::VerificationService::CacheStats cs = service.cache_stats();
  std::printf("cache: %llu hits, %llu misses, %llu evictions, %zu/%zu "
              "entries\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.evictions), cs.entries,
              cs.capacity);
  if (args.options.count("metrics") > 0) {
    std::printf("%s\n", service.metrics_json().c_str());
  }
  return any_errors ? 1 : 0;
}

/// `hpcgpt top`: the terminal dashboard over a /history telemetry
/// payload. A URL target polls the live endpoint once per --interval; a
/// file target renders one frame from a saved payload (useful for
/// post-mortems and tests).
int cmd_top(const Args& args) {
  require(!args.positional.empty(),
          "usage: hpcgpt top <url|file> [--interval S] [--frames N] "
          "[--plain]");
  std::string target = args.positional.front();
  const bool is_url = target.rfind("http://", 0) == 0;
  const bool plain = args.options.count("plain") > 0;
  const double interval = std::stod(opt(args, "interval", "1"));
  require(interval > 0.0, "top: --interval must be positive");
  // 0 = poll until the endpoint goes away; a file has exactly one frame.
  const std::size_t frames =
      std::stoull(opt(args, "frames", is_url ? "0" : "1"));
  while (!target.empty() && target.back() == '/') target.pop_back();

  std::size_t rendered = 0;
  while (frames == 0 || rendered < frames) {
    std::string payload;
    if (is_url) {
      obs::HttpResult r = obs::http_get(target + "/history");
      require(r.status == 200,
              "GET " + target + "/history returned HTTP " +
                  std::to_string(r.status));
      payload = std::move(r.body);
    } else {
      payload = read_file(target);
    }
    const json::Value history = json::parse(payload);
    // Home + clear between frames so the dashboard repaints in place.
    if (!plain) std::printf("\033[H\033[2J");
    std::printf("%s", obs::render_top_dashboard(history, !plain).c_str());
    std::fflush(stdout);
    ++rendered;
    if (!is_url) break;
    if (frames == 0 || rendered < frames) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    }
  }
  return 0;
}

int cmd_export_drb(const Args& args) {
  const std::string dir = opt(args, "dir", "drb_export");
  const std::string language = opt(args, "language", "both");
  std::vector<minilang::Flavor> flavors;
  if (language == "c" || language == "both") {
    flavors.push_back(minilang::Flavor::C);
  }
  if (language == "fortran" || language == "both") {
    flavors.push_back(minilang::Flavor::Fortran);
  }
  require(!flavors.empty(), "language must be c, fortran or both");

  // Plain mkdir via ofstream would fail on a missing directory; create it
  // portably with std::filesystem.
  std::filesystem::create_directories(dir);
  std::ofstream labels(dir + "/labels.csv");
  require(labels.good(), "cannot write labels.csv in " + dir);
  labels << "file,language,category,has_race\n";
  std::size_t written = 0;
  for (const minilang::Flavor flavor : flavors) {
    const auto suite = drb::evaluation_suite(flavor);
    const char* ext = flavor == minilang::Flavor::C ? ".c" : ".f90";
    for (const drb::TestCase& tc : suite) {
      const std::string filename = tc.id + ext;
      std::ofstream out(dir + "/" + filename);
      require(out.good(), "cannot write " + filename);
      out << tc.source;
      labels << filename << ',' << minilang::flavor_name(flavor) << ",\""
             << drb::category_name(tc.category) << "\"," 
             << (tc.has_race ? "yes" : "no") << "\n";
      ++written;
    }
  }
  std::printf("wrote %zu programs + labels.csv to %s/\n", written,
              dir.c_str());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: hpcgpt <collect|train|ask|detect|eval|serve|"
               "verify-serve|top|obs|export-drb> [options]\n"
               "(see the header of tools/hpcgpt_cli.cpp)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (command == "collect") return cmd_collect(args);
    if (command == "train") return cmd_train(args);
    if (command == "ask") return cmd_ask(args);
    if (command == "detect") return cmd_detect(args);
    if (command == "eval") return cmd_eval(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "verify-serve") return cmd_verify_serve(args);
    if (command == "top") return cmd_top(args);
    if (command == "obs") return cmd_obs(args);
    if (command == "export-drb") return cmd_export_drb(args);
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "hpcgpt: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Library-level validation (e.g. retrieval::engine_by_name on a bad
    // --retrieval value) throws std::invalid_argument, not hpcgpt::Error.
    std::fprintf(stderr, "hpcgpt: %s\n", e.what());
    return 1;
  }
}
