// hpcgpt_benchdiff — the perf-regression gate over BENCH_perf.json files.
//
//   hpcgpt_benchdiff baseline.json candidate.json
//       [--threshold PCT] [--scale-candidate F] [--scale-metric NAME=F]
//
// Compares every numeric metric the two files' "measured" sections share
// and fails (exit 1) when any gated metric regressed by more than the
// threshold (default 15%). Direction is inferred from the metric name:
// throughput-like metrics (*_per_second, gflops) and cache/speculation
// ratios (*hit_rate*, *accept_rate*) must not drop; latency-like metrics
// (latency, ttft, p95/p99 seconds) must not rise. Metrics matching no
// family (e.g. the model_weight_kib_* footprint series) are printed as
// informational only.
//
// One-sided metrics — present in only one of the two files — are
// reported as "NEW" / "REMOVED" warnings rather than silently skipped,
// so a renamed or dropped metric can't fall out of the gate unnoticed.
// Warnings never fail the diff by themselves, with one exception: the
// server_64stream_* family is required once present in the baseline —
// removing it exits 1, because that family is the paged-KV acceptance
// surface.
//
// Multi-worker train metrics (*_workersN, N > 1) are gated only when the
// running host has more than one core: on a 1-core host the engine's
// workers time-slice one CPU, so those comparisons measure scheduler
// noise, not a regression. Skipped comparisons print a note.
//
// --scale-candidate F is a test hook: it multiplies the candidate's
// throughput metrics by F and divides its latency metrics by F before
// comparing, so CI can verify the gate trips on a synthetic regression
// (e.g. F=0.8 simulates a uniform 20% slowdown). --scale-metric NAME=F
// is the single-metric version (repeatable) — direction-aware like
// --scale-candidate but touching only NAME, so CI can aim a synthetic
// regression at one gated metric (e.g. prefix_cache_hit_rate=0.5).
//
// Exit codes: 0 = no gated regression, 1 = regression detected,
// 2 = usage or parse error.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hpcgpt/json/json.hpp"
#include "hpcgpt/support/error.hpp"

using namespace hpcgpt;

namespace {

enum class Direction { HigherBetter, LowerBetter, Informational };

Direction classify(const std::string& name) {
  const auto contains = [&](const char* needle) {
    return name.find(needle) != std::string::npos;
  };
  // Ratio metrics first: "hit_rate"/"accept_rate" outrank the generic
  // name families so e.g. a hypothetical *_hit_rate_seconds never gets
  // misread as a latency.
  if (contains("hit_rate") || contains("accept_rate")) {
    return Direction::HigherBetter;
  }
  if (contains("per_second") || contains("gflops") || contains("qps")) {
    return Direction::HigherBetter;
  }
  if (contains("latency") || contains("ttft") || contains("seconds")) {
    return Direction::LowerBetter;
  }
  return Direction::Informational;
}

/// Metrics whose removal fails the diff outright instead of printing a
/// REMOVED warning. The wide-stream serving family is the paged-KV
/// acceptance surface, and the retrieval QPS family is the search
/// engine's — dropping either would silently un-gate a headline.
bool removal_is_failure(const std::string& name) {
  return name.rfind("server_64stream_", 0) == 0 ||
         name.rfind("retrieval_qps_", 0) == 0;
}

/// Worker count encoded in a train metric name ("..._workersN");
/// 0 when the name carries none.
int worker_count(const std::string& name) {
  const auto pos = name.find("workers");
  if (pos == std::string::npos) return 0;
  int n = 0;
  for (std::size_t i = pos + 7;
       i < name.size() && std::isdigit(static_cast<unsigned char>(name[i]));
       ++i) {
    n = n * 10 + (name[i] - '0');
  }
  return n;
}

json::Object load_measured(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const json::Value root = json::parse(buffer.str());
  require(root.is_object(), path + ": top level is not an object");
  const auto it = root.as_object().find("measured");
  require(it != root.as_object().end() && it->second.is_object(),
          path + ": no \"measured\" object");
  return it->second.as_object();
}

struct Options {
  std::string baseline;
  std::string candidate;
  double threshold_pct = 15.0;
  double scale_candidate = 1.0;
  /// Per-metric candidate scaling (--scale-metric NAME=F), applied
  /// direction-aware like --scale-candidate but to one metric only.
  std::vector<std::pair<std::string, double>> scale_metrics;
};

int usage() {
  std::fprintf(stderr,
               "usage: hpcgpt_benchdiff baseline.json candidate.json "
               "[--threshold PCT] [--scale-candidate F] "
               "[--scale-metric NAME=F]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value_of = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
      if (a == flag && i + 1 < argc) return argv[++i];
      throw InvalidArgument("missing value for " + std::string(flag));
    };
    try {
      if (a.rfind("--threshold", 0) == 0) {
        opts.threshold_pct = std::stod(value_of("--threshold"));
      } else if (a.rfind("--scale-candidate", 0) == 0) {
        opts.scale_candidate = std::stod(value_of("--scale-candidate"));
      } else if (a.rfind("--scale-metric", 0) == 0) {
        const std::string spec = value_of("--scale-metric");
        const auto eq = spec.find('=');
        if (eq == std::string::npos || eq == 0) {
          throw InvalidArgument("--scale-metric expects NAME=F, got " + spec);
        }
        opts.scale_metrics.emplace_back(spec.substr(0, eq),
                                        std::stod(spec.substr(eq + 1)));
      } else if (a.rfind("--", 0) == 0) {
        std::fprintf(stderr, "hpcgpt_benchdiff: unknown option %s\n",
                     a.c_str());
        return usage();
      } else {
        positional.push_back(a);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hpcgpt_benchdiff: %s\n", e.what());
      return usage();
    }
  }
  if (positional.size() != 2) return usage();
  opts.baseline = positional[0];
  opts.candidate = positional[1];

  try {
    const json::Object base = load_measured(opts.baseline);
    const json::Object cand = load_measured(opts.candidate);

    std::printf("%-44s %14s %14s %8s  %s\n", "metric", "baseline",
                "candidate", "delta%", "verdict");
    const unsigned host_cores = std::thread::hardware_concurrency();
    std::size_t compared = 0;
    std::size_t skipped_workers = 0;
    std::vector<std::string> regressions;
    std::vector<std::string> removed;
    for (const auto& [name, base_value] : base) {
      const auto it = cand.find(name);
      if (it == cand.end()) {
        if (base_value.is_number()) removed.push_back(name);
        continue;
      }
      if (!base_value.is_number() || !it->second.is_number()) {
        continue;
      }
      const Direction dir = classify(name);
      const double b = base_value.as_number();
      double c = it->second.as_number();
      if (dir == Direction::HigherBetter) c *= opts.scale_candidate;
      if (dir == Direction::LowerBetter) c /= opts.scale_candidate;
      for (const auto& [metric, factor] : opts.scale_metrics) {
        if (metric != name) continue;
        if (dir == Direction::HigherBetter) c *= factor;
        if (dir == Direction::LowerBetter) c /= factor;
      }
      const double delta_pct = b != 0.0 ? (c - b) / b * 100.0 : 0.0;

      const char* verdict = "info";
      bool gated = dir != Direction::Informational && b != 0.0;
      if (gated && host_cores <= 1 && worker_count(name) > 1) {
        // Multi-worker train throughput on a 1-core host measures how
        // the scheduler time-slices, not the engine — don't gate it.
        verdict = "skipped (1-core host)";
        gated = false;
        ++skipped_workers;
      }
      if (gated) {
        const bool regressed =
            dir == Direction::HigherBetter
                ? c < b * (1.0 - opts.threshold_pct / 100.0)
                : c > b * (1.0 + opts.threshold_pct / 100.0);
        verdict = regressed ? "REGRESSED" : "ok";
        if (regressed) regressions.push_back(name);
      }
      std::printf("%-44s %14.6g %14.6g %+7.1f%%  %s\n", name.c_str(), b, c,
                  delta_pct, verdict);
      ++compared;
    }
    require(compared > 0, "no shared numeric metrics under \"measured\"");

    std::vector<std::string> added;
    for (const auto& [name, value] : cand) {
      if (value.is_number() && base.find(name) == base.end()) {
        added.push_back(name);
      }
    }
    for (const std::string& name : added) {
      std::printf("warning: NEW metric %s (candidate only — no baseline "
                  "to gate against)\n",
                  name.c_str());
    }
    std::vector<std::string> removed_required;
    for (const std::string& name : removed) {
      if (removal_is_failure(name)) {
        std::printf("error: REQUIRED metric %s removed (baseline only — "
                    "dropped from candidate)\n",
                    name.c_str());
        removed_required.push_back(name);
      } else {
        std::printf("warning: REMOVED metric %s (baseline only — dropped "
                    "from candidate)\n",
                    name.c_str());
      }
    }
    if (skipped_workers > 0) {
      std::printf("note: %zu multi-worker train metric(s) not gated on "
                  "this 1-core host\n",
                  skipped_workers);
    }

    if (!regressions.empty() || !removed_required.empty()) {
      if (!regressions.empty()) {
        std::printf("\n%zu metric(s) regressed beyond %.1f%%:\n",
                    regressions.size(), opts.threshold_pct);
        for (const std::string& name : regressions) {
          std::printf("  %s\n", name.c_str());
        }
      }
      if (!removed_required.empty()) {
        std::printf("\n%zu required metric(s) removed:\n",
                    removed_required.size());
        for (const std::string& name : removed_required) {
          std::printf("  %s\n", name.c_str());
        }
      }
      return 1;
    }
    std::printf("\nno regression beyond %.1f%% across %zu metric(s)\n",
                opts.threshold_pct, compared);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "hpcgpt_benchdiff: %s\n", e.what());
    return 2;
  }
}
